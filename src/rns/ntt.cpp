#include "rns/ntt.h"

#include <map>
#include <mutex>

#include "memtrace/trace.h"
#include "support/faultinject.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_ntt_fwd("rns.ntt_fwd", faultinject::kLimbKinds);
faultinject::Site g_fault_ntt_inv("rns.ntt_inv", faultinject::kLimbKinds);
} // namespace

u64
findPrimitiveRoot(size_t two_n, const Modulus& q)
{
    MAD_REQUIRE((q.value() - 1) % two_n == 0, "q != 1 mod 2n");
    const u64 exponent = (q.value() - 1) / two_n;
    // Deterministic scan: candidate generators 2, 3, 4, ... One pow per
    // candidate: g^((q-1)/2) == -1 iff g is a quadratic non-residue, and
    // exactly then g^((q-1)/2n) has order 2n (its n-th power is -1).
    for (u64 g = 2; g < q.value(); ++g) {
        if (q.pow(g, (q.value() - 1) / 2) == q.value() - 1)
            return q.pow(g, exponent);
    }
    throw std::logic_error("no primitive root found (q not prime?)");
}

std::shared_ptr<const NttTables>
NttTables::get(size_t n, const Modulus& q)
{
    static std::mutex mu;
    static std::map<std::pair<size_t, u64>, std::weak_ptr<const NttTables>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = cache[{n, q.value()}];
    if (auto tables = slot.lock())
        return tables;
    auto tables = std::make_shared<const NttTables>(n, q);
    slot = tables;
    return tables;
}

NttTables::NttTables(size_t n_, const Modulus& q_) : n(n_), q(q_)
{
    MAD_REQUIRE(isPowerOfTwo(n), "NTT size must be a power of two");
    logn = floorLog2(n);

    const u64 psi = findPrimitiveRoot(2 * n, q);
    const u64 ipsi = q.inverse(psi);
    const u64 n_inv = q.inverse(static_cast<u64>(n % q.value()));

    // psi powers carry the forward twist and, via omega = psi^2, the
    // forward stage twiddles; ipsi powers are folded with n^{-1} into
    // the fused inverse untwist table.
    psi_pow.resize(n);
    psi_pow_shoup.resize(n);
    ipsi_ninv.resize(n);
    ipsi_ninv_shoup.resize(n);
    std::vector<u64> ipsi_pow(n);
    u64 p = 1, ip = 1;
    for (size_t i = 0; i < n; ++i) {
        psi_pow[i] = p;
        psi_pow_shoup[i] = q.shoupPrecompute(p);
        ipsi_pow[i] = ip;
        ipsi_ninv[i] = q.mul(ip, n_inv);
        ipsi_ninv_shoup[i] = q.shoupPrecompute(ipsi_ninv[i]);
        p = q.mul(p, psi);
        ip = q.mul(ip, ipsi);
    }

    // Stage twiddles are slices of the (i)psi power tables:
    // omega^(j * n/(2m)) = psi^(j * n/m), so no pow chains and no fresh
    // Shoup precomputations (a 128-bit division each) are needed for the
    // forward tables.
    omega_tw.resize(n);
    iomega_tw.resize(n);
    omega_tw_shoup.resize(n);
    iomega_tw_shoup.resize(n);
    for (size_t m = 1; m < n; m <<= 1) {
        const size_t stride = n / m;
        for (size_t j = 0; j < m; ++j) {
            const size_t e = j * stride;
            omega_tw[m + j] = psi_pow[e];
            omega_tw_shoup[m + j] = psi_pow_shoup[e];
            iomega_tw[m + j] = ipsi_pow[e];
            iomega_tw_shoup[m + j] = q.shoupPrecompute(ipsi_pow[e]);
        }
    }

    bitrev_swaps.reserve(n / 2);
    for (size_t i = 0; i < n; ++i) {
        u32 r = 0;
        for (unsigned b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        if (r > i)
            bitrev_swaps.emplace_back(static_cast<u32>(i), r);
    }
}

void
NttTables::cyclicTransformOne(u64* p, const std::vector<u64>& tw,
                              const std::vector<u64>& tw_shoup) const
{
    for (const auto& [i, r] : bitrev_swaps)
        std::swap(p[i], p[r]);
    const u64 two_q = 2 * q.value();
    for (size_t m = 1; m < n; m <<= 1) {
        for (size_t i = 0; i < n; i += 2 * m) {
            for (size_t j = 0; j < m; ++j) {
                const u64 w = tw[m + j];
                const u64 ws = tw_shoup[m + j];
                u64 x = p[i + j];
                if (x >= two_q)
                    x -= two_q;
                u64 y = q.mulShoupLazy(p[i + j + m], w, ws);
                p[i + j] = x + y;
                p[i + j + m] = x + two_q - y;
            }
        }
    }
    for (size_t i = 0; i < n; ++i) {
        u64 v = p[i];
        if (v >= two_q)
            v -= two_q;
        if (v >= q.value())
            v -= q.value();
        p[i] = v;
    }
}

void
NttTables::cyclicTransform(u64* const* a, size_t count,
                           const std::vector<u64>& tw,
                           const std::vector<u64>& tw_shoup) const
{
    if (count == 1) {
        cyclicTransformOne(a[0], tw, tw_shoup);
        return;
    }
    for (size_t b = 0; b < count; ++b) {
        u64* p = a[b];
        for (const auto& [i, r] : bitrev_swaps)
            std::swap(p[i], p[r]);
    }
    // Harvey lazy butterflies: values stay in [0, 4q) across stages (the
    // left operand is conditionally brought under 2q, the lazy Shoup
    // product is under 2q), with one final reduction pass. Each (stage,
    // twiddle) pair is loaded once and applied across the whole batch.
    const u64 two_q = 2 * q.value();
    for (size_t m = 1; m < n; m <<= 1) {
        for (size_t i = 0; i < n; i += 2 * m) {
            for (size_t j = 0; j < m; ++j) {
                const u64 w = tw[m + j];
                const u64 ws = tw_shoup[m + j];
                for (size_t b = 0; b < count; ++b) {
                    u64* p = a[b];
                    u64 x = p[i + j];
                    if (x >= two_q)
                        x -= two_q;
                    u64 y = q.mulShoupLazy(p[i + j + m], w, ws);
                    p[i + j] = x + y;
                    p[i + j + m] = x + two_q - y;
                }
            }
        }
    }
    for (size_t b = 0; b < count; ++b) {
        u64* p = a[b];
        for (size_t i = 0; i < n; ++i) {
            u64 v = p[i];
            if (v >= two_q)
                v -= two_q;
            if (v >= q.value())
                v -= q.value();
            p[i] = v;
        }
    }
}

void
NttTables::forwardBatch(u64* const* a, size_t count) const
{
    for (size_t b = 0; b < count; ++b) {
        MAD_TRACE_READ(a[b], n * sizeof(u64));
        MAD_TRACE_WRITE(a[b], n * sizeof(u64));
    }
    if (count == 1) {
        u64* p = a[0];
        for (size_t i = 1; i < n; ++i)
            p[i] = q.mulShoup(p[i], psi_pow[i], psi_pow_shoup[i]);
    } else {
        for (size_t i = 1; i < n; ++i) {
            const u64 w = psi_pow[i];
            const u64 ws = psi_pow_shoup[i];
            for (size_t b = 0; b < count; ++b)
                a[b][i] = q.mulShoup(a[b][i], w, ws);
        }
    }
    cyclicTransform(a, count, omega_tw, omega_tw_shoup);
    for (size_t b = 0; b < count; ++b)
        faultinject::guardLimb(g_fault_ntt_fwd, a[b], n);
}

void
NttTables::inverseBatch(u64* const* a, size_t count) const
{
    for (size_t b = 0; b < count; ++b) {
        MAD_TRACE_READ(a[b], n * sizeof(u64));
        MAD_TRACE_WRITE(a[b], n * sizeof(u64));
    }
    cyclicTransform(a, count, iomega_tw, iomega_tw_shoup);
    // Fused scale-by-n^{-1} and untwist: one Shoup multiply per
    // coefficient against the precombined psi^{-i} * n^{-1} table.
    if (count == 1) {
        u64* p = a[0];
        for (size_t i = 0; i < n; ++i)
            p[i] = q.mulShoup(p[i], ipsi_ninv[i], ipsi_ninv_shoup[i]);
    } else {
        for (size_t i = 0; i < n; ++i) {
            const u64 w = ipsi_ninv[i];
            const u64 ws = ipsi_ninv_shoup[i];
            for (size_t b = 0; b < count; ++b)
                a[b][i] = q.mulShoup(a[b][i], w, ws);
        }
    }
    for (size_t b = 0; b < count; ++b)
        faultinject::guardLimb(g_fault_ntt_inv, a[b], n);
}

void
NttTables::forward(u64* a) const
{
    u64* const one[1] = {a};
    forwardBatch(one, 1);
}

void
NttTables::inverse(u64* a) const
{
    u64* const one[1] = {a};
    inverseBatch(one, 1);
}

} // namespace madfhe
