/**
 * @file
 * RnsPoly: a ring element stored limb-major (one contiguous length-N buffer
 * per RNS limb) in either coefficient or evaluation representation. Limb-
 * major storage mirrors the paper's "limb-wise" access pattern (Table 3);
 * the slot-wise kernels (basis conversion) gather across limbs.
 */
#ifndef MADFHE_RING_POLY_H
#define MADFHE_RING_POLY_H

#include <memory>
#include <vector>

#include "ring/ring.h"

namespace madfhe {

/** Representation of a polynomial's limbs. */
enum class Rep
{
    Coeff, ///< Coefficient vector.
    Eval,  ///< Evaluations at odd powers of psi (NTT domain).
};

class RnsPoly
{
  public:
    RnsPoly() = default;

    /** Zero polynomial over the given chain indices. */
    RnsPoly(std::shared_ptr<const RingContext> ctx, std::vector<u32> basis,
            Rep rep);

    // Copies are memory traffic (a limb-wise read + write pass) and are
    // recorded by the memtrace instrumentation; moves are free and keep
    // the buffer address (so region tags stay valid). Defined in poly.cpp.
    RnsPoly(const RnsPoly& other);
    RnsPoly& operator=(const RnsPoly& other);
    RnsPoly(RnsPoly&& other) = default;
    RnsPoly& operator=(RnsPoly&& other) = default;
    ~RnsPoly() = default;

    const RingContext& ring() const { return *ctx; }
    std::shared_ptr<const RingContext> context() const { return ctx; }

    size_t numLimbs() const { return chain.size(); }
    size_t degree() const { return ctx->degree(); }
    Rep rep() const { return representation; }

    /** Chain indices of this polynomial's limbs. */
    const std::vector<u32>& basis() const { return chain; }
    /** Modulus of limb i. */
    const Modulus& modulus(size_t i) const { return ctx->modulus(chain[i]); }

    u64* limb(size_t i) { return data.data() + i * degree(); }
    const u64* limb(size_t i) const { return data.data() + i * degree(); }

    bool empty() const { return data.empty(); }

    /** In-place NTT on every limb (requires coefficient rep). */
    void toEval();
    /** In-place inverse NTT on every limb (requires evaluation rep). */
    void toCoeff();
    /** Convert to the requested representation if not already there. */
    void setRep(Rep r);

    /** this += other (same basis and rep). */
    void add(const RnsPoly& other);
    /** this -= other (same basis and rep). */
    void sub(const RnsPoly& other);
    /** this = -this. */
    void negate();
    /** this *= other pointwise (both in Eval rep, same basis). */
    void mulPointwise(const RnsPoly& other);
    /** Fused this += a * b pointwise (all Eval rep, same basis). */
    void addMul(const RnsPoly& a, const RnsPoly& b);
    /** Multiply every limb i by scalar[i] (already reduced mod q_i). */
    void mulScalarPerLimb(const std::vector<u64>& scalar);
    /** Multiply every limb by the same small integer constant. */
    void mulScalar(u64 c);

    /** Apply the Galois automorphism x -> x^t (works in either rep). */
    RnsPoly automorph(u64 t) const;

    /**
     * Drop limbs, keeping those whose position in `chain` is < keep
     * (used by Rescale/ModDown after the arithmetic is done).
     */
    void truncateLimbs(size_t keep);

    /** Deep structural equality (basis, rep, and data). */
    bool equals(const RnsPoly& other) const;

    /** Fill all limbs with the reduction of the same signed-int vector. */
    void setFromSigned(const std::vector<i64>& values);

  private:
    void requireCompatible(const RnsPoly& other) const;

    std::shared_ptr<const RingContext> ctx;
    std::vector<u32> chain;
    Rep representation = Rep::Coeff;
    std::vector<u64> data;
};

/**
 * Copy the limbs of `src` whose chain indices appear in `chain` (in that
 * order) into a new polynomial. Every requested index must be present in
 * src's basis.
 */
RnsPoly extractLimbs(const RnsPoly& src, const std::vector<u32>& chain);

} // namespace madfhe

#endif // MADFHE_RING_POLY_H
