#include "ring/ring.h"

namespace madfhe {

RingContext::RingContext(size_t n_, std::vector<u64> q_primes,
                         std::vector<u64> p_primes)
    : n(n_), num_q(q_primes.size())
{
    MAD_REQUIRE(isPowerOfTwo(n) && n >= 8, "ring degree must be a power of two >= 8");
    MAD_REQUIRE(!q_primes.empty(), "need at least one ciphertext modulus");
    logn = floorLog2(n);

    std::vector<u64> all = std::move(q_primes);
    all.insert(all.end(), p_primes.begin(), p_primes.end());
    mods.reserve(all.size());
    ntts.reserve(all.size());
    for (u64 q : all) {
        MAD_REQUIRE(isPrime(q), "modulus chain entries must be prime");
        MAD_REQUIRE(q % (2 * n) == 1, "moduli must be 1 mod 2N for the NTT");
        mods.emplace_back(q);
        ntts.emplace_back(NttTables::get(n, mods.back()));
    }
}

std::vector<u32>
RingContext::qIndices(size_t count) const
{
    MAD_REQUIRE(count <= num_q, "requested more Q limbs than the chain has");
    std::vector<u32> idx(count);
    for (size_t i = 0; i < count; ++i)
        idx[i] = static_cast<u32>(i);
    return idx;
}

std::vector<u32>
RingContext::pIndices() const
{
    std::vector<u32> idx(numP());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<u32>(num_q + i);
    return idx;
}

RnsBasis
RingContext::basisOf(const std::vector<u32>& chain_indices) const
{
    std::vector<Modulus> m;
    m.reserve(chain_indices.size());
    for (u32 i : chain_indices) {
        MAD_CHECK(i < mods.size(), "chain index out of range");
        m.push_back(mods[i]);
    }
    return RnsBasis(std::move(m));
}

const std::vector<u32>&
RingContext::evalPermutation(u64 t) const
{
    MAD_REQUIRE((t & 1) == 1 && t < 2 * n, "Galois element must be odd, < 2N");
    auto it = eval_perm_cache.find(t);
    if (it != eval_perm_cache.end())
        return it->second;

    // Slot k of the evaluation representation holds a(psi^(2k+1)).
    // (sigma_t a)(psi^(2k+1)) = a(psi^(t(2k+1) mod 2N)), and t odd keeps the
    // exponent odd, so this is the permutation k -> (t(2k+1) mod 2N - 1)/2.
    std::vector<u32> perm(n);
    for (size_t k = 0; k < n; ++k) {
        u64 e = (t * (2 * k + 1)) % (2 * n);
        perm[k] = static_cast<u32>((e - 1) / 2);
    }
    return eval_perm_cache.emplace(t, std::move(perm)).first->second;
}

const CoeffAutomorphism&
RingContext::coeffAutomorphism(u64 t) const
{
    MAD_REQUIRE((t & 1) == 1 && t < 2 * n, "Galois element must be odd, < 2N");
    auto it = coeff_auto_cache.find(t);
    if (it != coeff_auto_cache.end())
        return it->second;

    // x^i -> x^(i t mod 2N); exponents >= N wrap with a sign flip since
    // x^N = -1.
    CoeffAutomorphism aut;
    aut.index.resize(n);
    aut.negate.resize(n);
    for (size_t i = 0; i < n; ++i) {
        u64 e = (i * t) % (2 * n);
        if (e < n) {
            aut.index[i] = static_cast<u32>(e);
            aut.negate[i] = 0;
        } else {
            aut.index[i] = static_cast<u32>(e - n);
            aut.negate[i] = 1;
        }
    }
    return coeff_auto_cache.emplace(t, std::move(aut)).first->second;
}

u64
RingContext::galoisElt(int step) const
{
    // Rotations act on the n/2 plaintext slots through powers of g = 5,
    // which generates the subgroup of Z_{2N}^* fixing the slot pairing.
    const u64 m = 2 * n;
    size_t slots = n / 2;
    long long r = step % static_cast<long long>(slots);
    if (r < 0)
        r += slots;
    u64 g = 1;
    for (long long i = 0; i < r; ++i)
        g = (g * 5) % m;
    return g;
}

} // namespace madfhe
