/**
 * @file
 * RingContext: the cyclotomic ring R = Z[x]/(x^N + 1) together with the full
 * RNS modulus chain (Q primes q_0..q_L followed by the P primes used for
 * key-switching, Table 1), NTT tables per modulus, and cached automorphism
 * permutation tables.
 */
#ifndef MADFHE_RING_RING_H
#define MADFHE_RING_RING_H

#include <map>
#include <memory>
#include <vector>

#include "rns/basis.h"
#include "rns/ntt.h"

namespace madfhe {

/** Coefficient-domain action of a Galois automorphism x -> x^t. */
struct CoeffAutomorphism
{
    /** Destination index for each source coefficient. */
    std::vector<u32> index;
    /** True where the wrapped coefficient picks up a minus sign. */
    std::vector<u8> negate;
};

class RingContext
{
  public:
    /**
     * @param n Ring degree N (power of two).
     * @param q_primes Ciphertext modulus chain q_0 ... q_L (q_0 is the base).
     * @param p_primes Raised-modulus primes (the P of key switching).
     */
    RingContext(size_t n, std::vector<u64> q_primes,
                std::vector<u64> p_primes);

    size_t degree() const { return n; }
    unsigned logDegree() const { return logn; }

    /** Number of Q-chain primes (L + 1 in the paper's notation). */
    size_t numQ() const { return num_q; }
    /** Number of P primes (alpha, with dnum-style key switching). */
    size_t numP() const { return mods.size() - num_q; }
    /** Total moduli in the global chain (Q then P). */
    size_t numModuli() const { return mods.size(); }

    const Modulus& modulus(size_t chain_idx) const { return mods[chain_idx]; }
    const NttTables& ntt(size_t chain_idx) const { return *ntts[chain_idx]; }

    /** Chain indices [0, count) — the first `count` Q limbs. */
    std::vector<u32> qIndices(size_t count) const;
    /** Chain indices of all P limbs. */
    std::vector<u32> pIndices() const;

    /** Build an RnsBasis from chain indices. */
    RnsBasis basisOf(const std::vector<u32>& chain_indices) const;

    /**
     * Evaluation-domain permutation for the automorphism x -> x^t
     * (t odd, mod 2N): result[k] = source[perm[k]].
     */
    const std::vector<u32>& evalPermutation(u64 t) const;

    /** Coefficient-domain automorphism action for x -> x^t. */
    const CoeffAutomorphism& coeffAutomorphism(u64 t) const;

    /** Galois element for a rotation by `step` plaintext slots (g = 5). */
    u64 galoisElt(int step) const;
    /** Galois element for complex conjugation (2N - 1). */
    u64 conjugateElt() const { return 2 * n - 1; }

  private:
    size_t n;
    unsigned logn;
    size_t num_q;
    std::vector<Modulus> mods;
    /** Shared via the process-wide NttTables::get() memo, so contexts
     *  over the same primes reuse one table set. */
    std::vector<std::shared_ptr<const NttTables>> ntts;

    mutable std::map<u64, std::vector<u32>> eval_perm_cache;
    mutable std::map<u64, CoeffAutomorphism> coeff_auto_cache;
};

} // namespace madfhe

#endif // MADFHE_RING_RING_H
