#include "ring/poly.h"

#include <cstring>

#include "memtrace/trace.h"
#include "rns/simd/simd.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {

/** Bytes of one limb of `p`. */
inline size_t
limbBytes(const RnsPoly& p)
{
    return p.degree() * sizeof(u64);
}

faultinject::Site g_fault_alloc("ring.poly_alloc", faultinject::kPointKinds);
faultinject::Site g_fault_pointwise("ring.pointwise", faultinject::kLimbKinds);
faultinject::Site g_fault_automorph("ring.automorph", faultinject::kLimbKinds);

} // namespace

RnsPoly::RnsPoly(std::shared_ptr<const RingContext> ctx_,
                 std::vector<u32> basis_, Rep rep_)
    : ctx(std::move(ctx_)), chain(std::move(basis_)), representation(rep_)
{
    MAD_REQUIRE(ctx != nullptr, "RnsPoly requires a ring context");
    MAD_REQUIRE(!chain.empty(), "RnsPoly requires at least one limb");
    faultinject::touchPoint(g_fault_alloc);
    data.assign(chain.size() * ctx->degree(), 0);
    MAD_TRACE_ALLOC(data.data(), data.size() * sizeof(u64));
}

RnsPoly::RnsPoly(const RnsPoly& other)
    : ctx(other.ctx), chain(other.chain),
      representation(other.representation), data(other.data)
{
    if (!data.empty()) {
        MAD_TRACE_READ(other.data.data(), data.size() * sizeof(u64));
        MAD_TRACE_ALLOC(data.data(), data.size() * sizeof(u64));
        MAD_TRACE_WRITE(data.data(), data.size() * sizeof(u64));
    }
}

RnsPoly&
RnsPoly::operator=(const RnsPoly& other)
{
    if (this == &other)
        return *this;
    ctx = other.ctx;
    chain = other.chain;
    representation = other.representation;
    data = other.data;
    if (!data.empty()) {
        MAD_TRACE_READ(other.data.data(), data.size() * sizeof(u64));
        MAD_TRACE_ALLOC(data.data(), data.size() * sizeof(u64));
        MAD_TRACE_WRITE(data.data(), data.size() * sizeof(u64));
    }
    return *this;
}

void
RnsPoly::requireCompatible(const RnsPoly& other) const
{
    MAD_CHECK(ctx.get() == other.ctx.get(), "ring context mismatch");
    MAD_CHECK(chain == other.chain, "RNS basis mismatch");
    MAD_CHECK(representation == other.representation, "representation mismatch");
}

void
RnsPoly::toEval()
{
    MAD_CHECK(representation == Rep::Coeff, "toEval requires coefficient rep");
    TELEM_SPAN("NTT");
    TELEM_SPAN(simd::activeSpanLabel());
    TELEM_COUNT("ring.ntt.limbs", numLimbs());
    parallelFor(numLimbs(),
                [&](size_t i) { ctx->ntt(chain[i]).forward(limb(i)); });
    representation = Rep::Eval;
}

void
RnsPoly::toCoeff()
{
    MAD_CHECK(representation == Rep::Eval, "toCoeff requires evaluation rep");
    TELEM_SPAN("iNTT");
    TELEM_SPAN(simd::activeSpanLabel());
    TELEM_COUNT("ring.intt.limbs", numLimbs());
    parallelFor(numLimbs(),
                [&](size_t i) { ctx->ntt(chain[i]).inverse(limb(i)); });
    representation = Rep::Coeff;
}

void
RnsPoly::setRep(Rep r)
{
    if (representation == r)
        return;
    if (r == Rep::Eval)
        toEval();
    else
        toCoeff();
}

void
RnsPoly::add(const RnsPoly& other)
{
    requireCompatible(other);
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64* a = limb(i);
        const u64* b = other.limb(i);
        MAD_TRACE_READ(a, limbBytes(*this));
        MAD_TRACE_READ(b, limbBytes(*this));
        MAD_TRACE_WRITE(a, limbBytes(*this));
        for (size_t c = 0; c < n; ++c)
            a[c] = q.add(a[c], b[c]);
    });
}

void
RnsPoly::sub(const RnsPoly& other)
{
    requireCompatible(other);
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64* a = limb(i);
        const u64* b = other.limb(i);
        MAD_TRACE_READ(a, limbBytes(*this));
        MAD_TRACE_READ(b, limbBytes(*this));
        MAD_TRACE_WRITE(a, limbBytes(*this));
        for (size_t c = 0; c < n; ++c)
            a[c] = q.sub(a[c], b[c]);
    });
}

void
RnsPoly::negate()
{
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64* a = limb(i);
        MAD_TRACE_READ(a, limbBytes(*this));
        MAD_TRACE_WRITE(a, limbBytes(*this));
        for (size_t c = 0; c < n; ++c)
            a[c] = q.neg(a[c]);
    });
}

void
RnsPoly::mulPointwise(const RnsPoly& other)
{
    requireCompatible(other);
    MAD_CHECK(representation == Rep::Eval, "pointwise mul requires Eval rep");
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64* a = limb(i);
        const u64* b = other.limb(i);
        MAD_TRACE_READ(a, limbBytes(*this));
        MAD_TRACE_READ(b, limbBytes(*this));
        MAD_TRACE_WRITE(a, limbBytes(*this));
        simd::kernels().mul_mod_vec(a, b, n, q);
    });
    for (size_t i = 0; i < numLimbs(); ++i)
        faultinject::guardLimb(g_fault_pointwise, limb(i), n);
}

void
RnsPoly::addMul(const RnsPoly& a, const RnsPoly& b)
{
    requireCompatible(a);
    requireCompatible(b);
    MAD_CHECK(representation == Rep::Eval, "addMul requires Eval rep");
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64* dst = limb(i);
        const u64* x = a.limb(i);
        const u64* y = b.limb(i);
        MAD_TRACE_READ(dst, limbBytes(*this));
        MAD_TRACE_READ(x, limbBytes(*this));
        MAD_TRACE_READ(y, limbBytes(*this));
        MAD_TRACE_WRITE(dst, limbBytes(*this));
        simd::kernels().add_mul_mod_vec(dst, x, y, n, q);
    });
}

void
RnsPoly::mulScalarPerLimb(const std::vector<u64>& scalar)
{
    MAD_CHECK(scalar.size() == numLimbs(), "per-limb scalar count mismatch");
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64 s = scalar[i];
        u64 s_shoup = q.shoupPrecompute(s);
        u64* a = limb(i);
        MAD_TRACE_READ(a, limbBytes(*this));
        MAD_TRACE_WRITE(a, limbBytes(*this));
        simd::kernels().mul_shoup_scalar(a, a, n, s, s_shoup, q.value());
    });
}

void
RnsPoly::mulScalar(u64 c)
{
    std::vector<u64> per(numLimbs());
    for (size_t i = 0; i < numLimbs(); ++i)
        per[i] = modulus(i).reduce(c);
    mulScalarPerLimb(per);
}

RnsPoly
RnsPoly::automorph(u64 t) const
{
    MAD_TRACE_SCOPE("Automorph");
    TELEM_SPAN("Automorph");
    RnsPoly out(ctx, chain, representation);
    const size_t n = degree();
    if (representation == Rep::Eval) {
        const std::vector<u32>& perm = ctx->evalPermutation(t);
        parallelFor(numLimbs(), [&](size_t i) {
            const u64* src = limb(i);
            u64* dst = out.limb(i);
            MAD_TRACE_READ(src, limbBytes(*this));
            MAD_TRACE_WRITE(dst, limbBytes(*this));
            for (size_t k = 0; k < n; ++k)
                dst[k] = src[perm[k]];
        });
    } else {
        const CoeffAutomorphism& aut = ctx->coeffAutomorphism(t);
        parallelFor(numLimbs(), [&](size_t i) {
            const Modulus& q = modulus(i);
            const u64* src = limb(i);
            u64* dst = out.limb(i);
            MAD_TRACE_READ(src, limbBytes(*this));
            MAD_TRACE_WRITE(dst, limbBytes(*this));
            for (size_t k = 0; k < n; ++k) {
                u64 v = src[k];
                dst[aut.index[k]] = aut.negate[k] ? q.neg(v) : v;
            }
        });
    }
    for (size_t i = 0; i < out.numLimbs(); ++i)
        faultinject::guardLimb(g_fault_automorph, out.limb(i), n);
    return out;
}

void
RnsPoly::truncateLimbs(size_t keep)
{
    MAD_REQUIRE(keep >= 1 && keep <= numLimbs(), "invalid limb count to keep");
    chain.resize(keep);
    data.resize(keep * degree());
}

bool
RnsPoly::equals(const RnsPoly& other) const
{
    return ctx.get() == other.ctx.get() && chain == other.chain &&
           representation == other.representation && data == other.data;
}

void
RnsPoly::setFromSigned(const std::vector<i64>& values)
{
    MAD_CHECK(representation == Rep::Coeff, "setFromSigned requires coeff rep");
    MAD_REQUIRE(values.size() == degree(), "value count must equal ring degree");
    const size_t n = degree();
    parallelFor(numLimbs(), [&](size_t i) {
        const Modulus& q = modulus(i);
        u64* a = limb(i);
        MAD_TRACE_WRITE(a, limbBytes(*this));
        for (size_t c = 0; c < n; ++c)
            a[c] = q.fromSigned(values[c]);
    });
}

RnsPoly
extractLimbs(const RnsPoly& src, const std::vector<u32>& chain)
{
    RnsPoly out(src.context(), chain, src.rep());
    const size_t n = src.degree();
    for (size_t i = 0; i < chain.size(); ++i) {
        size_t pos = src.numLimbs();
        for (size_t k = 0; k < src.numLimbs(); ++k) {
            if (src.basis()[k] == chain[i]) {
                pos = k;
                break;
            }
        }
        MAD_REQUIRE(pos < src.numLimbs(),
                "extractLimbs: chain index missing from source basis");
        MAD_TRACE_READ(src.limb(pos), n * sizeof(u64));
        MAD_TRACE_WRITE(out.limb(i), n * sizeof(u64));
        std::copy(src.limb(pos), src.limb(pos) + n, out.limb(i));
    }
    return out;
}

} // namespace madfhe
