/**
 * @file
 * The graph pass pipeline. Order (each pass only ever rewrites edges or
 * appends nodes; a final dead-node prune + shape inference canonicalizes
 * the result):
 *
 *   1. alignLevels     — insert DropToLevel on the higher-level operand
 *                        of every Add/Sub/Mult, reproducing the manual
 *                        dropToLevel calls of the imperative schedules.
 *   2. placeRescales   — resolve every rescale-owing Mult: merged
 *                        ModDown (relin + rescale in one fused pass,
 *                        the default) or an explicit Rescale node.
 *   3. hoistRotations  — collapse N >= 2 Rotate nodes sharing a source
 *                        into one HoistedRotation (one Decomp+ModUp via
 *                        Evaluator::rotateHoisted instead of N).
 *   4. fuseMatVec      — mark PtMatVecMult nodes for the limb-fused
 *                        BSGS accumulation (LinearTransform::applyFused)
 *                        when the transform's hoisting options allow it.
 *   5. pruneDead       — drop nodes unreachable from the outputs
 *                        (Input nodes are always kept: run() binding is
 *                        positional).
 *
 * Pass invariant: with all passes enabled, executing the graph is
 * byte-identical to the imperative schedule it was built from, because
 * every rewrite maps onto an Evaluator path that is itself
 * byte-identical (merged ModDown, rotateHoisted for same-source
 * rotations, applyFused).
 */
#ifndef MADFHE_GRAPH_PASSES_H
#define MADFHE_GRAPH_PASSES_H

#include "graph/ir.h"

namespace madfhe {
namespace graph {

struct PassOptions
{
    bool align_levels = true;
    /** Resolve Mult rescales into the merged-ModDown path (false:
     *  explicit Rescale nodes, the unmerged two-pass pipeline). */
    bool merge_moddown = true;
    bool hoist_rotations = true;
    bool fuse_matvec = true;
};

struct PassStats
{
    size_t drops_inserted = 0;   ///< DropToLevel nodes added by align
    size_t rescales_placed = 0;  ///< explicit Rescale nodes added
    size_t moddowns_merged = 0;  ///< Mults resolved to merged ModDown
    size_t rotations_hoisted = 0; ///< Rotate nodes folded into groups
    size_t hoist_groups = 0;     ///< HoistedRotation nodes created
    size_t matvecs_fused = 0;    ///< PtMatVecMult nodes marked fused
    size_t nodes_pruned = 0;     ///< dead nodes removed
};

/**
 * Run the pipeline and finish with inferShapes(), so the returned graph
 * is ready for GraphExecutor::run(). Throws UserError (the Evaluator's
 * own messages) if the schedule is invalid even after alignment.
 */
PassStats runPasses(Graph& g, const CkksContext& ctx, PassOptions opts = {});

} // namespace graph
} // namespace madfhe

#endif // MADFHE_GRAPH_PASSES_H
