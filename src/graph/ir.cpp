#include "graph/ir.h"

#include <cmath>
#include <deque>

#include "ckks/context.h"
#include "ckks/matvec.h"
#include "support/errors.h"

namespace madfhe {
namespace graph {

const char*
opKindName(OpKind kind)
{
    switch (kind) {
    case OpKind::Input: return "Input";
    case OpKind::Add: return "Add";
    case OpKind::Sub: return "Sub";
    case OpKind::Mult: return "Mult";
    case OpKind::Rescale: return "Rescale";
    case OpKind::DropToLevel: return "DropToLevel";
    case OpKind::Rotate: return "Rotate";
    case OpKind::HoistedRotation: return "HoistedRotation";
    case OpKind::MulScalar: return "MulScalar";
    case OpKind::AddScalar: return "AddScalar";
    case OpKind::PtMatVecMult: return "PtMatVecMult";
    case OpKind::KeySwitch: return "KeySwitch";
    case OpKind::ModRaise: return "ModRaise";
    case OpKind::Bootstrap: return "Bootstrap";
    }
    return "Unknown";
}

u32
Graph::addNode(Node n)
{
    const u32 id = static_cast<u32>(nodes_.size());
    if (n.kind == OpKind::Input)
        input_ids_.push_back(id);
    nodes_.push_back(std::move(n));
    return id;
}

std::vector<u32>
Graph::topoOrder() const
{
    const size_t n = nodes_.size();
    std::vector<u32> indeg(n, 0);
    std::vector<std::vector<u32>> consumers(n);
    for (u32 id = 0; id < n; ++id) {
        for (const NodeRef& in : nodes_[id].inputs) {
            MAD_REQUIRE(in.node < n, "graph edge references a missing node");
            ++indeg[id];
            consumers[in.node].push_back(id);
        }
    }
    // Kahn with an ordered ready set: ids ascending, so the order is a
    // pure function of the graph, not of pass insertion history.
    std::deque<u32> ready;
    for (u32 id = 0; id < n; ++id)
        if (indeg[id] == 0)
            ready.push_back(id);
    std::vector<u32> order;
    order.reserve(n);
    while (!ready.empty()) {
        const u32 id = ready.front();
        ready.pop_front();
        order.push_back(id);
        for (u32 c : consumers[id]) {
            if (--indeg[c] == 0) {
                // insert keeping the deque sorted ascending
                auto it = ready.begin();
                while (it != ready.end() && *it < c)
                    ++it;
                ready.insert(it, c);
            }
        }
    }
    MAD_REQUIRE(order.size() == n, "graph contains a cycle");
    return order;
}

const ValueMeta&
Graph::metaOf(NodeRef ref) const
{
    const Node& nd = node(ref.node);
    MAD_CHECK(ref.port < nd.meta.size(),
              "edge metadata missing: run inferShapes first");
    return nd.meta[ref.port];
}

NodeRef
GraphBuilder::append(Node n)
{
    const u32 id = g_.addNode(std::move(n));
    return NodeRef{id, 0};
}

NodeRef
GraphBuilder::input(size_t level, double scale)
{
    MAD_REQUIRE(level >= 1, "graph input needs at least one limb");
    Node n;
    n.kind = OpKind::Input;
    n.input_level = level;
    n.input_scale = scale;
    return append(std::move(n));
}

NodeRef
GraphBuilder::add(NodeRef a, NodeRef b)
{
    Node n;
    n.kind = OpKind::Add;
    n.inputs = {a, b};
    return append(std::move(n));
}

NodeRef
GraphBuilder::sub(NodeRef a, NodeRef b)
{
    Node n;
    n.kind = OpKind::Sub;
    n.inputs = {a, b};
    return append(std::move(n));
}

NodeRef
GraphBuilder::mul(NodeRef a, NodeRef b)
{
    Node n;
    n.kind = OpKind::Mult;
    n.inputs = {a, b};
    n.rescale_after = true;
    return append(std::move(n));
}

NodeRef
GraphBuilder::mulNoRescale(NodeRef a, NodeRef b)
{
    Node n;
    n.kind = OpKind::Mult;
    n.inputs = {a, b};
    return append(std::move(n));
}

NodeRef
GraphBuilder::rescale(NodeRef a)
{
    Node n;
    n.kind = OpKind::Rescale;
    n.inputs = {a};
    return append(std::move(n));
}

NodeRef
GraphBuilder::dropToLevel(NodeRef a, size_t level)
{
    Node n;
    n.kind = OpKind::DropToLevel;
    n.inputs = {a};
    n.target_level = level;
    return append(std::move(n));
}

NodeRef
GraphBuilder::rotate(NodeRef a, int step)
{
    Node n;
    n.kind = OpKind::Rotate;
    n.inputs = {a};
    n.step = step;
    return append(std::move(n));
}

std::vector<NodeRef>
GraphBuilder::rotateHoisted(NodeRef a, const std::vector<int>& steps)
{
    Node n;
    n.kind = OpKind::HoistedRotation;
    n.inputs = {a};
    n.steps = steps;
    n.num_outputs = static_cast<u32>(steps.size());
    const NodeRef first = append(std::move(n));
    std::vector<NodeRef> refs;
    refs.reserve(steps.size());
    for (u32 p = 0; p < steps.size(); ++p)
        refs.push_back(NodeRef{first.node, p});
    return refs;
}

NodeRef
GraphBuilder::mulScalar(NodeRef a, double scalar)
{
    Node n;
    n.kind = OpKind::MulScalar;
    n.inputs = {a};
    n.scalar = scalar;
    return append(std::move(n));
}

NodeRef
GraphBuilder::addScalar(NodeRef a, double scalar)
{
    Node n;
    n.kind = OpKind::AddScalar;
    n.inputs = {a};
    n.scalar = scalar;
    return append(std::move(n));
}

NodeRef
GraphBuilder::matVec(NodeRef a, const LinearTransform* t)
{
    MAD_REQUIRE(t != nullptr, "PtMatVecMult node needs a transform");
    Node n;
    n.kind = OpKind::PtMatVecMult;
    n.inputs = {a};
    n.transform = t;
    return append(std::move(n));
}

NodeRef
GraphBuilder::keySwitch(NodeRef a)
{
    Node n;
    n.kind = OpKind::KeySwitch;
    n.inputs = {a};
    return append(std::move(n));
}

NodeRef
GraphBuilder::modRaise(NodeRef a)
{
    Node n;
    n.kind = OpKind::ModRaise;
    n.inputs = {a};
    return append(std::move(n));
}

NodeRef
GraphBuilder::bootstrap(NodeRef a)
{
    Node n;
    n.kind = OpKind::Bootstrap;
    n.inputs = {a};
    return append(std::move(n));
}

void
GraphBuilder::output(NodeRef ref)
{
    auto outs = g_.outputs();
    outs.push_back(ref);
    g_.setOutputs(std::move(outs));
}

void
GraphBuilder::outputs(const std::vector<NodeRef>& refs)
{
    for (NodeRef r : refs)
        output(r);
}

Graph
GraphBuilder::build()
{
    MAD_REQUIRE(!g_.outputs().empty(), "graph has no outputs");
    return std::move(g_);
}

namespace {

void
requireSameShape(const ValueMeta& a, const ValueMeta& b)
{
    // Mirror of Evaluator::requireSameShape (same messages).
    MAD_REQUIRE(a.level == b.level, "ciphertext levels differ");
    const double rel = std::abs(a.scale - b.scale) / a.scale;
    MAD_REQUIRE(rel < 1e-3, "ciphertext scales differ; rescale/align first");
}

} // namespace

void
inferShapes(Graph& g, const CkksContext& ctx)
{
    const size_t slots = ctx.slots();
    for (u32 id : g.topoOrder()) {
        Node& n = g.node(id);
        n.meta.assign(n.num_outputs, ValueMeta{});
        auto in = [&](size_t i) -> const ValueMeta& {
            return g.metaOf(n.inputs.at(i));
        };
        switch (n.kind) {
        case OpKind::Input:
            n.meta[0] = {n.input_level, n.input_scale, slots};
            break;
        case OpKind::Add:
        case OpKind::Sub:
            requireSameShape(in(0), in(1));
            n.meta[0] = in(0);
            break;
        case OpKind::Mult: {
            requireSameShape(in(0), in(1));
            const ValueMeta& a = in(0);
            const ValueMeta& b = in(1);
            if (n.rescale_after || n.merged) {
                MAD_REQUIRE(a.level >= 2, "mul needs a level to rescale into");
                n.meta[0] = {a.level - 1,
                             a.scale * b.scale /
                                 static_cast<double>(ctx.qValue(a.level - 1)),
                             slots};
            } else {
                n.meta[0] = {a.level, a.scale * b.scale, slots};
            }
            break;
        }
        case OpKind::Rescale: {
            const ValueMeta& a = in(0);
            MAD_REQUIRE(a.level >= 2, "cannot rescale the last limb away");
            n.meta[0] = {a.level - 1,
                         a.scale / static_cast<double>(ctx.qValue(a.level - 1)),
                         slots};
            break;
        }
        case OpKind::DropToLevel: {
            const ValueMeta& a = in(0);
            MAD_REQUIRE(n.target_level >= 1 && n.target_level <= a.level,
                        "bad target level");
            n.meta[0] = {n.target_level, a.scale, slots};
            break;
        }
        case OpKind::Rotate:
        case OpKind::KeySwitch:
            n.meta[0] = in(0);
            break;
        case OpKind::HoistedRotation: {
            MAD_REQUIRE(n.num_outputs == n.steps.size(),
                        "hoisted rotation port/step count mismatch");
            for (u32 p = 0; p < n.num_outputs; ++p)
                n.meta[p] = in(0);
            break;
        }
        case OpKind::MulScalar: {
            const ValueMeta& a = in(0);
            MAD_REQUIRE(a.level >= 2, "no level left to rescale into");
            // mulScalarRescale folds the scalar into q_top then rescales:
            // one level down, scale unchanged.
            n.meta[0] = {a.level - 1, a.scale, slots};
            break;
        }
        case OpKind::AddScalar:
            n.meta[0] = in(0);
            break;
        case OpKind::PtMatVecMult: {
            MAD_REQUIRE(n.transform != nullptr,
                        "PtMatVecMult node needs a transform");
            const ValueMeta& a = in(0);
            MAD_REQUIRE(a.level >= 2, "cannot rescale the last limb away");
            n.meta[0] = {a.level - 1,
                         a.scale * n.transform->ptScale() /
                             static_cast<double>(ctx.qValue(a.level - 1)),
                         slots};
            break;
        }
        case OpKind::ModRaise: {
            const ValueMeta& a = in(0);
            MAD_REQUIRE(a.level == 1, "ModRaise expects an exhausted (1-limb) ciphertext");
            n.meta[0] = {ctx.maxLevel(), a.scale, slots};
            break;
        }
        case OpKind::Bootstrap:
            n.meta[0] = {ctx.maxLevel(), ctx.scale(), slots};
            break;
        }
    }
}

} // namespace graph
} // namespace madfhe
