/**
 * @file
 * GraphExecutor: asynchronous topological execution of an evaluation
 * graph over an `EvalBackend` (real CKKS or the plaintext virtual
 * backend — the executor is backend-agnostic, so the same graph runs
 * under MADFHE_BACKEND=real and =virtual).
 *
 * Scheduling: Kahn waves. Every node whose inputs are ready executes;
 * nodes within a wave run concurrently on the global threadpool
 * (nested evaluator parallelism runs inline, so results stay
 * deterministic and byte-identical at any thread count). Between waves
 * the executor frees values whose last consumer has run — the
 * memory-aware part: peak live ciphertexts track the graph's width,
 * not its size.
 *
 * Telemetry: one span per node ("Graph.<OpKind>"), graph.nodes /
 * graph.waves / graph.values_freed counters, and a graph.node_ns
 * histogram, all under a "GraphExecute" parent span.
 */
#ifndef MADFHE_GRAPH_EXEC_H
#define MADFHE_GRAPH_EXEC_H

#include "ckks/backend.h"
#include "graph/ir.h"

namespace madfhe {

class Bootstrapper;

namespace graph {

struct ExecOptions
{
    /** Run independent nodes of a wave concurrently on the global pool
     *  (results are byte-identical either way). */
    bool parallel = true;
};

class GraphExecutor
{
  public:
    /**
     * Keys are optional: a graph without Mult/KeySwitch nodes needs no
     * rlk, one without rotations no gks. `boot` (real backend only)
     * serves ModRaise nodes.
     */
    GraphExecutor(const EvalBackend& backend,
                  const SwitchingKey* rlk = nullptr,
                  const GaloisKeys* gks = nullptr,
                  const Bootstrapper* boot = nullptr,
                  ExecOptions options = {});

    /**
     * Execute `g` binding `inputs` positionally to the graph's Input
     * nodes; returns the graph outputs in declaration order. Requires
     * runPasses()/inferShapes() to have run (node metadata present and
     * every Mult's rescale placement resolved).
     */
    std::vector<Ciphertext> run(const Graph& g,
                                const std::vector<Ciphertext>& inputs) const;

  private:
    const EvalBackend& backend_;
    const SwitchingKey* rlk_;
    const GaloisKeys* gks_;
    const Bootstrapper* boot_;
    ExecOptions opts_;
};

} // namespace graph
} // namespace madfhe

#endif // MADFHE_GRAPH_EXEC_H
