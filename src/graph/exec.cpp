#include "graph/exec.h"

#include <algorithm>

#include "boot/bootstrapper.h"
#include "support/errors.h"
#include "support/threadpool.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace graph {

namespace {

const char*
spanNameFor(OpKind kind)
{
    switch (kind) {
    case OpKind::Input: return "Graph.Input";
    case OpKind::Add: return "Graph.Add";
    case OpKind::Sub: return "Graph.Sub";
    case OpKind::Mult: return "Graph.Mult";
    case OpKind::Rescale: return "Graph.Rescale";
    case OpKind::DropToLevel: return "Graph.DropToLevel";
    case OpKind::Rotate: return "Graph.Rotate";
    case OpKind::HoistedRotation: return "Graph.HoistedRotation";
    case OpKind::MulScalar: return "Graph.MulScalar";
    case OpKind::AddScalar: return "Graph.AddScalar";
    case OpKind::PtMatVecMult: return "Graph.PtMatVecMult";
    case OpKind::KeySwitch: return "Graph.KeySwitch";
    case OpKind::ModRaise: return "Graph.ModRaise";
    case OpKind::Bootstrap: return "Graph.Bootstrap";
    }
    return "Graph.Unknown";
}

} // namespace

GraphExecutor::GraphExecutor(const EvalBackend& backend,
                             const SwitchingKey* rlk, const GaloisKeys* gks,
                             const Bootstrapper* boot, ExecOptions options)
    : backend_(backend), rlk_(rlk), gks_(gks), boot_(boot), opts_(options)
{
}

std::vector<Ciphertext>
GraphExecutor::run(const Graph& g,
                   const std::vector<Ciphertext>& inputs) const
{
    TELEM_SPAN("GraphExecute");
    const size_t n = g.size();
    MAD_REQUIRE(inputs.size() == g.numInputs(),
                "graph input count mismatch");
    for (u32 id = 0; id < n; ++id) {
        const Node& nd = g.node(id);
        MAD_REQUIRE(nd.meta.size() == nd.num_outputs,
                    "graph not finalized: run the pass pipeline first");
        MAD_REQUIRE(!(nd.kind == OpKind::Mult && nd.rescale_after),
                    "unresolved Mult rescale: run the pass pipeline first");
    }

    // Positional input binding.
    std::vector<u32> input_pos(n, 0);
    for (u32 i = 0; i < g.inputIds().size(); ++i)
        input_pos[g.inputIds()[i]] = i;

    // Dataflow bookkeeping: indegree (edges in), consumer lists, and a
    // remaining-use count per node so values free as soon as their last
    // consumer has run.
    std::vector<u32> indeg(n, 0);
    std::vector<std::vector<u32>> consumers(n);
    std::vector<u32> uses(n, 0);
    for (u32 id = 0; id < n; ++id) {
        for (const NodeRef& in : g.node(id).inputs) {
            ++indeg[id];
            consumers[in.node].push_back(id);
            ++uses[in.node];
        }
    }
    std::vector<bool> pinned(n, false); // graph outputs stay live
    for (const NodeRef& o : g.outputs())
        pinned[o.node] = true;

    std::vector<std::vector<Ciphertext>> vals(n);

    auto execNode = [&](u32 id) {
        const Node& nd = g.node(id);
        telemetry::Span span(spanNameFor(nd.kind));
        const u64 t0 = telemetry::nowNs();
        auto arg = [&](size_t i) -> const Ciphertext& {
            const NodeRef& r = nd.inputs.at(i);
            return vals[r.node].at(r.port);
        };
        std::vector<Ciphertext> out;
        switch (nd.kind) {
        case OpKind::Input:
            out.push_back(inputs[input_pos[id]]);
            break;
        case OpKind::Add:
            out.push_back(backend_.add(arg(0), arg(1)));
            break;
        case OpKind::Sub:
            out.push_back(backend_.sub(arg(0), arg(1)));
            break;
        case OpKind::Mult:
            MAD_REQUIRE(rlk_ != nullptr,
                        "graph Mult needs a relinearization key");
            out.push_back(nd.merged
                              ? backend_.mul(arg(0), arg(1), *rlk_)
                              : backend_.mulNoRescale(arg(0), arg(1), *rlk_));
            break;
        case OpKind::Rescale:
            out.push_back(backend_.rescale(arg(0)));
            break;
        case OpKind::DropToLevel:
            out.push_back(backend_.dropToLevel(arg(0), nd.target_level));
            break;
        case OpKind::Rotate:
            MAD_REQUIRE(gks_ != nullptr, "graph Rotate needs Galois keys");
            out.push_back(backend_.rotate(arg(0), nd.step, *gks_));
            break;
        case OpKind::HoistedRotation:
            MAD_REQUIRE(gks_ != nullptr, "graph Rotate needs Galois keys");
            out = backend_.rotateHoisted(arg(0), nd.steps, *gks_);
            break;
        case OpKind::MulScalar:
            out.push_back(backend_.mulScalarRescale(arg(0), nd.scalar));
            break;
        case OpKind::AddScalar:
            out.push_back(backend_.addScalar(arg(0), nd.scalar));
            break;
        case OpKind::PtMatVecMult:
            MAD_REQUIRE(gks_ != nullptr,
                        "graph PtMatVecMult needs Galois keys");
            out.push_back(nd.fused
                              ? backend_.matVecFused(*nd.transform, arg(0),
                                                     *gks_)
                              : backend_.matVec(*nd.transform, arg(0),
                                                *gks_));
            break;
        case OpKind::KeySwitch: {
            const auto* rb = dynamic_cast<const RealBackend*>(&backend_);
            MAD_REQUIRE(rb != nullptr,
                        "KeySwitch nodes require the real backend");
            MAD_REQUIRE(rlk_ != nullptr,
                        "graph KeySwitch needs a switching key");
            const Ciphertext& a = arg(0);
            auto [u, v] =
                rb->evaluator().keySwitcher().keySwitch(a.c1, *rlk_);
            Ciphertext ct;
            ct.c0 = a.c0;
            ct.c0.add(u);
            ct.c1 = std::move(v);
            ct.scale = a.scale;
            out.push_back(std::move(ct));
            break;
        }
        case OpKind::ModRaise: {
            const auto* rb = dynamic_cast<const RealBackend*>(&backend_);
            MAD_REQUIRE(rb != nullptr && boot_ != nullptr,
                        "ModRaise nodes require the real backend and a "
                        "bootstrapper");
            out.push_back(boot_->modRaise(arg(0)));
            break;
        }
        case OpKind::Bootstrap:
            out.push_back(backend_.bootstrap(arg(0)));
            break;
        }
        MAD_CHECK(out.size() == nd.num_outputs,
                  "graph node produced wrong output count");
        vals[id] = std::move(out);
        TELEM_COUNT("graph.nodes", 1);
        TELEM_HIST("graph.node_ns", telemetry::nowNs() - t0);
    };

    // Kahn waves; within a wave nodes are independent and run
    // concurrently (nested evaluator parallelFor runs inline).
    std::vector<u32> wave;
    for (u32 id = 0; id < n; ++id)
        if (indeg[id] == 0)
            wave.push_back(id);
    size_t executed = 0;
    while (!wave.empty()) {
        TELEM_COUNT("graph.waves", 1);
        if (opts_.parallel && wave.size() > 1 &&
            ThreadPool::global().size() > 1) {
            ThreadPool::global().run(wave.size(),
                                     [&](size_t i) { execNode(wave[i]); });
        } else {
            for (u32 id : wave)
                execNode(id);
        }
        executed += wave.size();

        std::vector<u32> next;
        for (u32 id : wave) {
            for (u32 c : consumers[id])
                if (--indeg[c] == 0)
                    next.push_back(c);
            // Free values whose consumers have all run (between waves,
            // single-threaded).
            for (const NodeRef& in : g.node(id).inputs) {
                if (--uses[in.node] == 0 && !pinned[in.node]) {
                    vals[in.node].clear();
                    vals[in.node].shrink_to_fit();
                    TELEM_COUNT("graph.values_freed", 1);
                }
            }
        }
        std::sort(next.begin(), next.end());
        wave = std::move(next);
    }
    MAD_CHECK(executed == n, "graph contains a cycle");

    std::vector<Ciphertext> results;
    results.reserve(g.outputs().size());
    for (const NodeRef& o : g.outputs())
        results.push_back(vals[o.node].at(o.port));
    return results;
}

} // namespace graph
} // namespace madfhe
