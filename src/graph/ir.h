/**
 * @file
 * Evaluation-graph IR: a small DAG whose ops are the paper's Table 2
 * primitives (Mult, Rotate, Rescale, ModRaise, KeySwitch, PtMatVecMult,
 * Bootstrap) plus the scalar/level utilities the app schedules need.
 * Every edge carries (level, scale, slots) metadata, computed by
 * `inferShapes` with exactly the Evaluator's level/scale state machine
 * (same UserError messages on invalid transitions), so a graph that
 * fails shape inference would have thrown identically on the imperative
 * path.
 *
 * The IR is deliberately minimal: a flat node vector in builder
 * (topological) order, multi-output nodes for hoisted rotations, and a
 * `GraphBuilder` whose methods mirror the `Evaluator`/`EvalBackend`
 * call surface one-to-one. Scheduling decisions (rescale placement,
 * ModDown merging, rotation hoisting, matvec limb fusion) live in
 * graph/passes.h; execution over an `EvalBackend` lives in
 * graph/exec.h.
 */
#ifndef MADFHE_GRAPH_IR_H
#define MADFHE_GRAPH_IR_H

#include <vector>

#include "support/common.h"

namespace madfhe {

class CkksContext;
class LinearTransform;

namespace graph {

enum class OpKind : u8
{
    Input = 0,       ///< graph parameter (bound at execution time)
    Add,             ///< strict add (levels equal, scales within tol)
    Sub,             ///< strict subtract
    Mult,            ///< ciphertext tensor + relinearize (Table 2 Mult)
    Rescale,         ///< divide by q_top, drop one limb (Table 2 Rescale)
    DropToLevel,     ///< truncate limbs to a target level
    Rotate,          ///< automorph + KeySwitch (Table 2 Rotate)
    HoistedRotation, ///< N same-source rotations over one Decomp+ModUp
    MulScalar,       ///< scalar product folded into one rescale
    AddScalar,       ///< scalar addition (no level consumed)
    PtMatVecMult,    ///< BSGS diagonal matvec (Table 2 PtMatVecMult)
    KeySwitch,       ///< bare hybrid key switch of c1 (Table 2 KeySwitch)
    ModRaise,        ///< reinterpret a 1-limb ct over the full chain
    Bootstrap,       ///< full bootstrap back to max level
};

const char* opKindName(OpKind kind);

/** An edge source: output `port` of node `node`. */
struct NodeRef
{
    u32 node = 0;
    u32 port = 0;

    bool operator==(const NodeRef& o) const
    {
        return node == o.node && port == o.port;
    }
    bool operator<(const NodeRef& o) const
    {
        return node != o.node ? node < o.node : port < o.port;
    }
};

/** Per-edge ciphertext metadata (the paper's l, Delta, and slot count). */
struct ValueMeta
{
    size_t level = 0;
    double scale = 0.0;
    size_t slots = 0;
};

struct Node
{
    OpKind kind = OpKind::Input;
    std::vector<NodeRef> inputs;
    u32 num_outputs = 1;

    // --- per-kind attributes (sparse; only the relevant ones are set) ---
    size_t input_level = 0;  ///< Input: declared level
    double input_scale = 0.0; ///< Input: declared scale
    int step = 0;            ///< Rotate: slot rotation amount
    std::vector<int> steps;  ///< HoistedRotation: one per output port
    size_t target_level = 0; ///< DropToLevel
    double scalar = 0.0;     ///< MulScalar / AddScalar
    /** PtMatVecMult: non-owning; must outlive graph execution. */
    const LinearTransform* transform = nullptr;
    /** Mult built by GraphBuilder::mul(): the product still owes a
     *  rescale. The pass pipeline resolves it into either `merged` or an
     *  explicit Rescale node; the executor refuses to run it unresolved. */
    bool rescale_after = false;
    /** Mult: execute the merged-ModDown path (relin + rescale fused). */
    bool merged = false;
    /** PtMatVecMult: use the limb-fused BSGS accumulation. */
    bool fused = false;

    /** Per-output metadata, filled by inferShapes(). */
    std::vector<ValueMeta> meta;
};

class Graph
{
  public:
    const std::vector<Node>& nodes() const { return nodes_; }
    Node& node(u32 id) { return nodes_.at(id); }
    const Node& node(u32 id) const { return nodes_.at(id); }
    size_t size() const { return nodes_.size(); }

    /** Graph results, in the order run() returns them. */
    const std::vector<NodeRef>& outputs() const { return outputs_; }
    void setOutputs(std::vector<NodeRef> outs) { outputs_ = std::move(outs); }

    /** Input nodes in declaration order (the run() binding order). */
    const std::vector<u32>& inputIds() const { return input_ids_; }
    size_t numInputs() const { return input_ids_.size(); }

    /** Append a node; records Input ids. Returns the new node id. */
    u32 addNode(Node n);

    /**
     * Kahn topological order, ids ascending within each indegree wave —
     * deterministic regardless of how passes appended nodes.
     */
    std::vector<u32> topoOrder() const;

    /** Metadata of an edge source (inferShapes must have run). */
    const ValueMeta& metaOf(NodeRef ref) const;

  private:
    std::vector<Node> nodes_;
    std::vector<NodeRef> outputs_;
    std::vector<u32> input_ids_;
};

/**
 * Fluent graph construction mirroring the Evaluator call surface.
 * `mul` builds a rescale-owing Mult the pass pipeline later resolves;
 * `mulNoRescale` builds the raw tensor product. Methods return the
 * NodeRef of the produced value.
 */
class GraphBuilder
{
  public:
    NodeRef input(size_t level, double scale);
    NodeRef add(NodeRef a, NodeRef b);
    NodeRef sub(NodeRef a, NodeRef b);
    /** Mult + pending rescale (Table 2 Mult semantics). */
    NodeRef mul(NodeRef a, NodeRef b);
    /** Raw tensor product at full scale (caller owes the rescale). */
    NodeRef mulNoRescale(NodeRef a, NodeRef b);
    NodeRef square(NodeRef a) { return mul(a, a); }
    NodeRef rescale(NodeRef a);
    NodeRef dropToLevel(NodeRef a, size_t level);
    NodeRef rotate(NodeRef a, int step);
    /** Explicit hoisted rotation group; port i carries steps[i]. */
    std::vector<NodeRef> rotateHoisted(NodeRef a,
                                       const std::vector<int>& steps);
    NodeRef mulScalar(NodeRef a, double scalar);
    NodeRef addScalar(NodeRef a, double scalar);
    NodeRef matVec(NodeRef a, const LinearTransform* t);
    NodeRef keySwitch(NodeRef a);
    NodeRef modRaise(NodeRef a);
    NodeRef bootstrap(NodeRef a);

    void output(NodeRef ref);
    void outputs(const std::vector<NodeRef>& refs);

    /** Finish construction (builder is spent afterwards). */
    Graph build();

  private:
    NodeRef append(Node n);

    Graph g_;
};

/**
 * Compute per-edge (level, scale, slots) in topological order, raising
 * the Evaluator's own UserErrors ("ciphertext levels differ", "mul needs
 * a level to rescale into", ...) on invalid transitions. Idempotent;
 * passes re-run it after rewriting the graph.
 */
void inferShapes(Graph& g, const CkksContext& ctx);

} // namespace graph
} // namespace madfhe

#endif // MADFHE_GRAPH_IR_H
