#include "graph/passes.h"

#include <map>

#include "ckks/context.h"
#include "ckks/matvec.h"
#include "support/errors.h"

namespace madfhe {
namespace graph {

namespace {

/** Redirect every use of `from` (node inputs and graph outputs) to `to`,
 *  excluding node `except`. */
void
rewireUses(Graph& g, NodeRef from, NodeRef to, u32 except)
{
    for (u32 id = 0; id < g.size(); ++id) {
        if (id == except)
            continue;
        for (NodeRef& in : g.node(id).inputs)
            if (in == from)
                in = to;
    }
    auto outs = g.outputs();
    for (NodeRef& o : outs)
        if (o == from)
            o = to;
    g.setOutputs(std::move(outs));
}

/**
 * Track only the levels alignment decisions need: a lightweight forward
 * walk (full scale/error checking is inferShapes' job at the end).
 */
size_t
levelAfter(const Node& n, const std::vector<size_t>& in_levels,
           const CkksContext& ctx)
{
    switch (n.kind) {
    case OpKind::Input:
        return n.input_level;
    case OpKind::Mult:
        return (n.rescale_after || n.merged) && in_levels[0] >= 1
                   ? in_levels[0] - 1
                   : in_levels[0];
    case OpKind::Rescale:
    case OpKind::MulScalar:
    case OpKind::PtMatVecMult:
        // Underflow guard only; inferShapes raises the real UserError.
        return in_levels[0] >= 1 ? in_levels[0] - 1 : 0;
    case OpKind::DropToLevel:
        return n.target_level;
    case OpKind::ModRaise:
    case OpKind::Bootstrap:
        return ctx.maxLevel();
    default:
        return in_levels.empty() ? 0 : in_levels[0];
    }
}

size_t
alignLevels(Graph& g, const CkksContext& ctx)
{
    size_t inserted = 0;
    // per-node output level (ports of one node share a level)
    std::vector<size_t> level(g.size(), 0);
    for (u32 id : g.topoOrder()) {
        Node& n = g.node(id);
        if (n.kind == OpKind::Add || n.kind == OpKind::Sub ||
            n.kind == OpKind::Mult) {
            const size_t la = level[n.inputs[0].node];
            const size_t lb = level[n.inputs[1].node];
            if (la != lb) {
                const size_t target = std::min(la, lb);
                const size_t which = la > lb ? 0 : 1;
                Node drop;
                drop.kind = OpKind::DropToLevel;
                drop.inputs = {n.inputs[which]};
                drop.target_level = target;
                const u32 did = g.addNode(std::move(drop));
                level.push_back(target);
                g.node(id).inputs[which] = NodeRef{did, 0};
                ++inserted;
            }
        }
        const Node& nn = g.node(id);
        std::vector<size_t> ins;
        ins.reserve(nn.inputs.size());
        for (const NodeRef& in : nn.inputs)
            ins.push_back(level[in.node]);
        level[id] = levelAfter(nn, ins, ctx);
    }
    return inserted;
}

void
placeRescales(Graph& g, bool merge, PassStats& stats)
{
    const size_t n = g.size();
    for (u32 id = 0; id < n; ++id) {
        Node& node = g.node(id);
        if (node.kind != OpKind::Mult || !node.rescale_after)
            continue;
        node.rescale_after = false;
        if (merge) {
            node.merged = true;
            ++stats.moddowns_merged;
        } else {
            Node rn;
            rn.kind = OpKind::Rescale;
            rn.inputs = {NodeRef{id, 0}};
            const u32 rid = g.addNode(std::move(rn));
            rewireUses(g, NodeRef{id, 0}, NodeRef{rid, 0}, rid);
            ++stats.rescales_placed;
        }
    }
}

void
hoistRotations(Graph& g, PassStats& stats)
{
    // Group Rotate nodes by source edge; id order keeps steps stable.
    std::map<NodeRef, std::vector<u32>> by_source;
    for (u32 id = 0; id < g.size(); ++id) {
        const Node& n = g.node(id);
        if (n.kind == OpKind::Rotate)
            by_source[n.inputs[0]].push_back(id);
    }
    for (const auto& [src, rotates] : by_source) {
        if (rotates.size() < 2)
            continue;
        Node h;
        h.kind = OpKind::HoistedRotation;
        h.inputs = {src};
        h.num_outputs = static_cast<u32>(rotates.size());
        for (u32 rid : rotates)
            h.steps.push_back(g.node(rid).step);
        const u32 hid = g.addNode(std::move(h));
        for (u32 p = 0; p < rotates.size(); ++p)
            rewireUses(g, NodeRef{rotates[p], 0},
                       NodeRef{hid, static_cast<u32>(p)}, hid);
        stats.rotations_hoisted += rotates.size();
        ++stats.hoist_groups;
    }
}

void
fuseMatVec(Graph& g, PassStats& stats)
{
    for (u32 id = 0; id < g.size(); ++id) {
        Node& n = g.node(id);
        if (n.kind != OpKind::PtMatVecMult || n.fused)
            continue;
        // applyFused covers the hoisted single-ModDown-per-giant BSGS
        // configuration; other option combinations keep apply().
        const MatVecOptions& o = n.transform->options();
        if (o.hoist_modup && o.hoist_moddown && !o.double_hoist) {
            n.fused = true;
            ++stats.matvecs_fused;
        }
    }
}

size_t
pruneDead(Graph& g)
{
    const size_t n = g.size();
    std::vector<bool> live(n, false);
    std::vector<u32> work;
    for (const NodeRef& o : g.outputs()) {
        if (!live[o.node]) {
            live[o.node] = true;
            work.push_back(o.node);
        }
    }
    while (!work.empty()) {
        const u32 id = work.back();
        work.pop_back();
        for (const NodeRef& in : g.node(id).inputs) {
            if (!live[in.node]) {
                live[in.node] = true;
                work.push_back(in.node);
            }
        }
    }
    // Inputs are positional run() bindings; never prune them.
    for (u32 id : g.inputIds())
        live[id] = true;

    size_t dead = 0;
    for (bool l : live)
        dead += !l;
    if (dead == 0)
        return 0;

    std::vector<u32> remap(n, 0);
    Graph pruned;
    for (u32 id = 0; id < n; ++id) {
        if (!live[id])
            continue;
        Node copy = g.node(id);
        for (NodeRef& in : copy.inputs)
            in.node = remap[in.node];
        remap[id] = pruned.addNode(std::move(copy));
    }
    auto outs = g.outputs();
    for (NodeRef& o : outs)
        o.node = remap[o.node];
    pruned.setOutputs(std::move(outs));
    g = std::move(pruned);
    return dead;
}

} // namespace

PassStats
runPasses(Graph& g, const CkksContext& ctx, PassOptions opts)
{
    PassStats stats;
    if (opts.align_levels)
        stats.drops_inserted = alignLevels(g, ctx);
    placeRescales(g, opts.merge_moddown, stats);
    if (opts.hoist_rotations)
        hoistRotations(g, stats);
    if (opts.fuse_matvec)
        fuseMatVec(g, stats);
    stats.nodes_pruned = pruneDead(g);
    inferShapes(g, ctx);
    return stats;
}

} // namespace graph
} // namespace madfhe
