#include "serve/governor.h"

#include <algorithm>

#include "support/env.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace serve {

GovernorOptions
GovernorOptions::fromEnv()
{
    GovernorOptions o;
    o.queue_depth = static_cast<size_t>(env::u64Or("MADFHE_QUEUE_DEPTH", 0));
    o.tenant_queue_depth =
        static_cast<size_t>(env::u64Or("MADFHE_TENANT_QUEUE_DEPTH", 0));
    o.breaker_threshold =
        static_cast<u32>(env::u64Or("MADFHE_BREAKER", 0));
    o.breaker_cooldown_ms = env::u64Or("MADFHE_BREAKER_COOLDOWN_MS", 100);
    return o;
}

OverloadGovernor::OverloadGovernor(GovernorOptions options)
    : opts(options)
{
}

OverloadGovernor::TenantState&
OverloadGovernor::tenantState(u64 tenant)
{
    auto it = tenants.find(tenant);
    if (it == tenants.end()) {
        resilience::CircuitBreaker::Config cfg;
        cfg.threshold = opts.breaker_threshold;
        cfg.cooldown_ns = opts.breaker_cooldown_ms * 1'000'000ULL;
        it = tenants.try_emplace(tenant, cfg).first;
    }
    return it->second;
}

std::optional<OverloadGovernor::Rejection>
OverloadGovernor::admit(u64 tenant, u64 now_ns, bool& global_full)
{
    global_full = false;
    std::lock_guard<std::mutex> lock(mu);
    TenantState& ts = tenantState(tenant);
    // Depth before breaker: allow() consumes the one half-open probe
    // slot, so it must be the last check that can still reject — a
    // depth rejection after a consumed probe would leak the slot.
    if (opts.tenant_queue_depth != 0 &&
        ts.inflight >= opts.tenant_queue_depth) {
        TELEM_COUNT("serve.shed", 1);
        return Rejection{ErrorKind::Overloaded,
                         "tenant queue full (" +
                             std::to_string(opts.tenant_queue_depth) +
                             " in flight)"};
    }
    if (!ts.breaker.allow(now_ns)) {
        TELEM_COUNT("serve.breaker_open", 1);
        return Rejection{ErrorKind::Overloaded,
                         "circuit breaker open for tenant " +
                             std::to_string(tenant)};
    }
    // Reserve the slot under the same lock as the checks (all admitters
    // serialize on mu; onFinish only ever decrements), making the caps
    // hard bounds instead of check-then-act races.
    global_full = opts.queue_depth != 0 &&
                  inflight_global.load(std::memory_order_relaxed) >=
                      opts.queue_depth;
    ++ts.inflight;
    inflight_global.fetch_add(1, std::memory_order_relaxed);
    TELEM_GAUGE_SET("serve.inflight",
                    static_cast<i64>(
                        inflight_global.load(std::memory_order_relaxed)));
    return std::nullopt;
}

void
OverloadGovernor::onFinish(u64 tenant, bool ok, ErrorKind kind, bool executed,
                           u64 now_ns)
{
    inflight_global.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    TenantState& ts = tenantState(tenant);
    if (ts.inflight > 0)
        --ts.inflight;
    // Only executed requests move the breaker: a shed or expired
    // request says nothing about the tenant's health, and a UserError
    // is the client's fault, not the service's. A non-executed request
    // still reports in so a half-open probe slot it was holding is
    // handed back instead of leaking (permanent tenant lockout).
    if (executed) {
        if (ok)
            ts.breaker.onSuccess();
        else if (kind != ErrorKind::User)
            ts.breaker.onFailure(now_ns);
    } else {
        ts.breaker.onAbandoned(now_ns);
    }
}

void
OverloadGovernor::forgetTenant(u64 tenant)
{
    std::lock_guard<std::mutex> lock(mu);
    tenants.erase(tenant);
}

u64
OverloadGovernor::breakerTrips(u64 tenant) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = tenants.find(tenant);
    return it == tenants.end() ? 0 : it->second.breaker.trips();
}

void
OverloadGovernor::observeCachePressure(KeyCache& cache)
{
    if (!opts.degrade)
        return;
    const KeyCache::Stats stats = cache.stats();
    bool evict = false;
    {
        std::lock_guard<std::mutex> lock(pressure_mu);
        const bool pressured = stats.overcommits > last_overcommits;
        last_overcommits = stats.overcommits;
        const int level = level_.load(std::memory_order_relaxed);
        if (pressured) {
            healthy_streak = 0;
            if (level < 2) {
                setLevel(level + 1);
                evict = true;
            } else {
                // Already at the floor: keep shedding resident keys so
                // the pinned working set is all that stays expanded.
                evict = true;
            }
        } else if (level > 0) {
            if (++healthy_streak >= opts.restore_after) {
                healthy_streak = 0;
                setLevel(level - 1);
            }
        }
    }
    if (evict) {
        // The sweep crosses the serve.evict fault site, so an injected
        // fault (allocfail/taskthrow) can unwind out of it. This runs
        // on the dispatcher thread — an escaping exception would
        // std::terminate the server — and the guard fires before any
        // accounting changes, so the cache is still consistent: count
        // the fault and move on; the next pressured batch re-sweeps.
        try {
            cache.evictUnpinned();
        } catch (...) {
            TELEM_COUNT("serve.degrade.evict_fault", 1);
        }
    }
}

void
OverloadGovernor::setLevel(int next)
{
    // Caller holds pressure_mu.
    const int prev = level_.exchange(next, std::memory_order_relaxed);
    if (prev == next)
        return;
    TELEM_COUNT("serve.degrade.transitions", 1);
    if (next > prev)
        TELEM_COUNT("serve.degrade.stepdown", 1);
    else
        TELEM_COUNT("serve.degrade.restore", 1);
    TELEM_GAUGE_SET("serve.degrade_level", next);
}

StreamPolicy
OverloadGovernor::cappedPolicy(StreamPolicy ambient) const
{
    switch (level_.load(std::memory_order_relaxed)) {
    case 0:
        return ambient;
    case 1:
        return std::min(ambient, StreamPolicy::Cache);
    default:
        return std::min(ambient, StreamPolicy::Fuse);
    }
}

size_t
OverloadGovernor::cappedBatchMax(size_t base) const
{
    const int level = level_.load(std::memory_order_relaxed);
    return std::max<size_t>(1, base >> level);
}

} // namespace serve
} // namespace madfhe
