#include "serve/session.h"

#include <memory>
#include <unordered_map>

namespace madfhe {
namespace serve {

const char*
tenantLabel(u64 tenant)
{
    // Interned with process lifetime so the pointer is a valid
    // telemetry span name (spans store names by pointer). Bounded by
    // the number of distinct tenants ever seen.
    static std::mutex mu;
    static std::unordered_map<u64, std::unique_ptr<std::string>> labels;
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = labels[tenant];
    if (!slot)
        slot = std::make_unique<std::string>("tenant-" +
                                             std::to_string(tenant));
    return slot->c_str();
}

Session::Session(u64 tenant, std::shared_ptr<const CkksContext> ctx_,
                 KeyCache& cache_, TenantKeys keys_)
    : tenant_(tenant), label_(tenantLabel(tenant)), ctx(std::move(ctx_)),
      cache(cache_), keys(std::move(keys_)),
      req_counter(telemetry::counter("serve.tenant." +
                                     std::to_string(tenant) + ".requests")),
      err_counter(telemetry::counter("serve.tenant." +
                                     std::to_string(tenant) + ".errors")),
      lat_hist(telemetry::histogram("serve.tenant." + std::to_string(tenant) +
                                    ".latency_ns"))
{
    // Registration compresses each key to seed-only form; std::map
    // nodes are pointer-stable, so the cache can manage them in place.
    rlk_id = cache.insert(tenant_, "rlk", &keys.rlk);
    for (auto& [elt, key] : keys.gks)
        galois_ids.emplace(
            elt, cache.insert(tenant_, "gk" + std::to_string(elt), &key));
}

Session::~Session()
{
    cache.eraseTenant(tenant_);
}

KeyCache::Lease
Session::galois(u64 elt)
{
    auto it = galois_ids.find(elt);
    MAD_REQUIRE(it != galois_ids.end(),
                "tenant " + std::to_string(tenant_) +
                    " has no Galois key for element " + std::to_string(elt));
    return cache.acquire(it->second);
}

void
Session::put(const std::string& name, Ciphertext ct)
{
    std::lock_guard<std::mutex> lock(store_mu);
    store.insert_or_assign(name, std::move(ct));
}

std::optional<Ciphertext>
Session::get(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(store_mu);
    auto it = store.find(name);
    if (it == store.end())
        return std::nullopt;
    return it->second;
}

size_t
Session::storeSize() const
{
    std::lock_guard<std::mutex> lock(store_mu);
    return store.size();
}

} // namespace serve
} // namespace madfhe
