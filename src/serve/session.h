/**
 * @file
 * Session: per-tenant serving state — the tenant's switching-key
 * material registered behind the shared KeyCache, the tenant's
 * encrypted key-value store (the encrypted-Redis surface), and interned
 * per-tenant telemetry handles.
 *
 * The session owns the key objects; the cache only manages their
 * expanded/compressed state. The evaluator reads keys in place through
 * galoisKeys(), so a rotate works as long as the specific key it needs
 * is held expanded by a Lease — other keys in the map may be seed-only
 * at that moment. Isolation contract: nothing in a session is shared
 * with another tenant except the byte budget itself, so one tenant's
 * evictions can cost another tenant a re-expansion but can never alter
 * its state or results.
 */
#ifndef MADFHE_SERVE_SESSION_H
#define MADFHE_SERVE_SESSION_H

#include <map>
#include <optional>

#include "ckks/encryptor.h"
#include "serve/keycache.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace serve {

/** Key material a tenant registers when its session is created.
 *  Switching keys may arrive compressed (seed + b-halves) — the wire
 *  form saveSwitchingKeyCompressed() produces. */
struct TenantKeys
{
    PublicKey pk;
    SwitchingKey rlk;
    GaloisKeys gks;
    /**
     * Demo-only trust-the-server mode: when present, DecryptShare
     * requests return the decrypted slots. A production deployment
     * would hold a threshold share instead; nothing else reads this.
     */
    std::optional<SecretKey> sk;
};

/** Interned "tenant-<id>" label with process lifetime, usable as a
 *  telemetry span name. */
const char* tenantLabel(u64 tenant);

class Session
{
  public:
    Session(u64 tenant, std::shared_ptr<const CkksContext> ctx,
            KeyCache& cache, TenantKeys keys);
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    u64 tenant() const { return tenant_; }
    const char* label() const { return label_; }
    const PublicKey& publicKey() const { return keys.pk; }
    const std::optional<SecretKey>& secretKey() const { return keys.sk; }

    /** Key map the evaluator reads; pair with galois() leases. */
    const GaloisKeys& galoisKeys() const { return keys.gks; }
    const SwitchingKey& relinKey() const { return keys.rlk; }

    /** Pin the relinearization key expanded. */
    KeyCache::Lease relin() { return cache.acquire(rlk_id); }
    /** Pin the Galois key for automorphism element `elt` expanded. */
    KeyCache::Lease galois(u64 elt);
    bool hasGalois(u64 elt) const { return galois_ids.count(elt) != 0; }

    // --- encrypted key-value store ---------------------------------------
    void put(const std::string& name, Ciphertext ct);
    std::optional<Ciphertext> get(const std::string& name) const;
    size_t storeSize() const;

    // --- per-tenant telemetry (interned once, written lock-free) ----------
    telemetry::Counter& requestCounter() { return req_counter; }
    telemetry::Counter& errorCounter() { return err_counter; }
    telemetry::Histogram& latencyHistogram() { return lat_hist; }

  private:
    u64 tenant_;
    const char* label_;
    std::shared_ptr<const CkksContext> ctx;
    KeyCache& cache;
    TenantKeys keys;

    KeyCache::EntryId rlk_id = 0;
    std::map<u64, KeyCache::EntryId> galois_ids;

    mutable std::mutex store_mu;
    std::map<std::string, Ciphertext> store;

    telemetry::Counter& req_counter;
    telemetry::Counter& err_counter;
    telemetry::Histogram& lat_hist;
};

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_SESSION_H
