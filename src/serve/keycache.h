/**
 * @file
 * KeyCache: an LRU byte budget over the seed-expandable halves of
 * switching keys, shared by every tenant session of a Server.
 *
 * The MAD key-compression optimization (Section 3.2) makes the uniform
 * a-half of each switching-key digit reproducible from a 32-byte PRNG
 * seed. At serving scale that is the difference between "millions of
 * resident key sets" and "millions of seeds": the cache keeps only the
 * hot keys expanded, charges each expanded key its a-half bytes
 * (SwitchingKey::aBytes()), and evicts least-recently-used keys back to
 * seed-only form when the budget (MADFHE_KEYCACHE_BYTES) is exceeded.
 * Evicted keys are re-expanded bit-exactly on the next use via
 * SwitchingKey::expandA(), so eviction is invisible to results — only
 * to latency, which the serve.keycache.* telemetry counters expose.
 *
 * The cache does not own key material: sessions own their SwitchingKey
 * objects and register pointers, so the evaluator keeps reading keys in
 * place through the session's GaloisKeys map. A Lease pins a key
 * expanded for the duration of an evaluator pass; pinned keys are never
 * evicted. Eviction and re-expansion are guarded by the `serve.evict`
 * fault-injection site (see support/faultinject.h): with integrity
 * checks on, a corrupted surviving b-half or re-expanded a-half is
 * detected at the hand-off instead of silently poisoning every later
 * key-switch.
 */
#ifndef MADFHE_SERVE_KEYCACHE_H
#define MADFHE_SERVE_KEYCACHE_H

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckks/keys.h"

namespace madfhe {
namespace serve {

class KeyCache
{
  public:
    using EntryId = u64;

    /**
     * @param ctx     Context keys are expanded against.
     * @param budget  Byte budget over expanded a-halves; 0 = unlimited.
     */
    KeyCache(std::shared_ptr<const CkksContext> ctx, size_t budget);

    /** MADFHE_KEYCACHE_BYTES, or 0 (unlimited) when unset. */
    static size_t budgetFromEnv();

    /**
     * Register `key` (owned by the caller, which must outlive the entry
     * or erase it). The key is compressed to seed-only form on insert;
     * the budget must fit at least this key's a-halves.
     */
    EntryId insert(u64 tenant, std::string name, SwitchingKey* key);

    /** Drop every entry of `tenant` (keys stay valid, compressed). */
    void eraseTenant(u64 tenant);

    /**
     * Pin of one expanded key. The key stays expanded and ineligible
     * for eviction until the lease is destroyed.
     */
    class Lease
    {
      public:
        Lease() = default;
        Lease(KeyCache* cache, EntryId id) : cache_(cache), id_(id) {}
        Lease(Lease&& o) noexcept : cache_(o.cache_), id_(o.id_)
        {
            o.cache_ = nullptr;
        }
        Lease& operator=(Lease&& o) noexcept
        {
            release();
            cache_ = o.cache_;
            id_ = o.id_;
            o.cache_ = nullptr;
            return *this;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        ~Lease() { release(); }

      private:
        void release();

        KeyCache* cache_ = nullptr;
        EntryId id_ = 0;
    };

    /**
     * Expand (if evicted) and pin the entry, evicting LRU unpinned
     * entries first when the expansion would exceed the budget.
     *
     * Exception-safe against expansion faults: if expandA() or its
     * integrity guard throws (the `serve.evict` fault site), the entry
     * is rolled back to seed-only form and nothing is charged against
     * the budget — a failed expansion can neither shrink the effective
     * budget nor leave a corrupt half resident for a later hit.
     */
    Lease acquire(EntryId id);

    /**
     * Proactively evict every resident, unpinned entry (the governor's
     * memory-pressure step-down). Leased keys are untouched. Returns
     * the bytes freed.
     */
    size_t evictUnpinned();

    struct Stats
    {
        size_t budget_bytes = 0;
        size_t resident_bytes = 0; ///< charged a-half bytes, now
        size_t peak_bytes = 0;     ///< high-water mark of resident_bytes
        size_t entries = 0;
        size_t resident_entries = 0;
        size_t pinned_entries = 0; ///< entries with an open Lease
        u64 hits = 0;
        u64 misses = 0;
        u64 evictions = 0;
        /** Times eviction could not get under budget (all pinned). */
        u64 overcommits = 0;
    };
    Stats stats() const;

    /** True when the entry's a-halves are currently expanded. */
    bool isResident(EntryId id) const;

    /** Resident entry names in LRU -> MRU order (eviction order). */
    std::vector<std::string> residentNames() const;

  private:
    friend class Lease;

    struct Entry
    {
        u64 tenant = 0;
        std::string name;
        SwitchingKey* key = nullptr;
        size_t charge = 0; ///< aBytes(), the evictable footprint
        size_t pins = 0;
        bool resident = false;
        std::list<EntryId>::iterator lru_pos; ///< valid iff resident
    };

    /** Evict LRU unpinned entries until resident + need <= budget. */
    void makeRoom(size_t need);
    void unpin(EntryId id);

    std::shared_ptr<const CkksContext> ctx;
    size_t budget;

    mutable std::mutex mu;
    std::unordered_map<EntryId, Entry> entries;
    std::list<EntryId> lru; ///< front = least recently used
    EntryId next_id = 1;
    size_t resident_bytes = 0;
    size_t peak_bytes = 0;
    u64 hits = 0, misses = 0, evictions = 0, overcommits = 0;
};

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_KEYCACHE_H
