/**
 * @file
 * Server: the multi-tenant encrypted-serving runtime.
 *
 * Requests enter either as structs (submit) or as checksummed wire
 * frames (submitFrame, the path the TCP front end uses) and are queued
 * to a dispatcher thread. The dispatcher groups adjacent compatible
 * requests into batches (see batcher.h) and executes each batch as one
 * evaluator pass: the switching keys every item needs are pinned
 * expanded once per (tenant, batch) through the shared KeyCache, then
 * the items fan out across the existing threadpool. While a batch
 * executes, the next one accumulates — the classic batch-while-busy
 * pipeline — so decode/queueing overlaps evaluation.
 *
 * Every per-request computation is a pure function of (request,
 * session state): evaluator ops are deterministic and server-side
 * encryption derives its randomness from (tenant, request id), so a
 * batched run is byte-identical to the same requests executed
 * sequentially against a bare Evaluator, whatever the batch shapes.
 *
 * Observability/robustness: requests run under "Serve.Request" spans
 * with per-tenant child spans and per-tenant request/error/latency
 * metrics; failures are caught per item, classified (ErrorKind), and
 * returned as error responses — a hostile frame or an injected fault
 * never takes the server down.
 *
 * Overload resilience (see DESIGN.md "Robustness model"): every request
 * carries a monotonic deadline (its own deadline_ms, else
 * MADFHE_DEADLINE_MS) checked at dispatch; admission is bounded by an
 * OverloadGovernor (global/per-tenant queue depth, per-tenant circuit
 * breaker) which sheds the earliest-deadline queued request as a typed
 * Overloaded rejection when the global queue is full; transient
 * failures (injected faults, detected corruption) are retried
 * server-side under MADFHE_RETRY — deterministic execution makes a
 * retried success byte-identical to a fault-free run; and sustained
 * key-cache overcommit steps a degrade level down (stream policy cap +
 * batch shrink + proactive eviction) instead of failing requests.
 */
#ifndef MADFHE_SERVE_SERVER_H
#define MADFHE_SERVE_SERVER_H

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>

#include "ckks/backend.h"
#include "ckks/matvec.h"
#include "serve/batcher.h"
#include "serve/governor.h"
#include "serve/session.h"

namespace madfhe {
namespace serve {

struct ServerOptions
{
    /** Key-cache byte budget; nullopt reads MADFHE_KEYCACHE_BYTES
     *  (0 / unset = unlimited). */
    std::optional<size_t> keycache_bytes;
    /** Batch size cap; nullopt reads MADFHE_BATCH_MAX (default 8). */
    std::optional<size_t> max_batch;
    /** Deadline applied to requests that carry none; nullopt reads
     *  MADFHE_DEADLINE_MS (0 / unset = no deadline). */
    std::optional<u64> default_deadline_ms;
    /** Server-side retry policy for transient failures; nullopt reads
     *  MADFHE_RETRY (default 1 attempt = no retries). */
    std::optional<resilience::RetryPolicy> retry;
    /** Admission control + degradation policy; nullopt reads the
     *  MADFHE_QUEUE_DEPTH / MADFHE_TENANT_QUEUE_DEPTH / MADFHE_BREAKER
     *  knobs. */
    std::optional<GovernorOptions> governor;
    /** Evaluation backend; nullopt reads MADFHE_BACKEND (default real).
     *  The virtual backend serves the same op surface on plaintext
     *  carriers with SimFHE-predicted cost accounting (tools/loadgen). */
    std::optional<BackendKind> backend;
};

class Server
{
  public:
    explicit Server(std::shared_ptr<const CkksContext> ctx,
                    ServerOptions options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    const CkksContext& context() const { return *ctx; }
    std::shared_ptr<const RingContext> ring() const { return ctx->ring(); }

    /** Register a tenant; returns its id. Keys may be compressed. */
    u64 addTenant(TenantKeys keys);
    /** Remove a tenant. Must not be called with its requests in flight. */
    void removeTenant(u64 tenant);

    /** Register a server-hosted linear transform MatVec requests can
     *  reference by name (e.g. a model layer shared by all tenants). */
    void registerTransform(const std::string& name, LinearTransform t);
    /** Rotation steps tenants need Galois keys for to use `name`. */
    std::vector<int> transformRotations(const std::string& name) const;

    /** Enqueue one request; the future resolves when its batch ran. */
    std::future<Response> submit(Request req);

    /** Decode a wire frame (serve.decode fault site) and enqueue it.
     *  Decode failures resolve immediately as error responses. */
    std::future<Response> submitFrame(const std::string& frame);

    /** Block until every submitted request has been answered. */
    void drain();

    /** Stop the dispatcher after draining pending requests. Called by
     *  the destructor; new submissions are rejected afterwards. */
    void stop();

    KeyCache::Stats keyCacheStats() const { return cache.stats(); }

    /** The evaluation backend requests execute on (real or virtual). */
    const EvalBackend& backend() const { return *backend_; }

    /** Admission/degradation state — for tests and telemetry export. */
    OverloadGovernor& governor() { return governor_; }
    const OverloadGovernor& governor() const { return governor_; }

    /**
     * Deterministic per-request encryption seed: server-side Encrypt
     * uses randomness derived from (tenant, request id), never from
     * execution order, so batching cannot change results.
     */
    static u64 encryptionSeedFor(u64 tenant, u64 request_id);

  private:
    void dispatchLoop();
    void executeBatch(Batch& batch);
    void execItem(PendingRequest& item, Session& session);
    Response executeOne(Session& session, const Request& req);
    /** `executed` false for shed / deadline-expired items that never
     *  ran: they resolve and count like failures but must not move the
     *  tenant's circuit breaker. */
    void finish(PendingRequest& item, Session* session, Response resp,
                u64 t0_ns, bool executed = true);
    /** Immediately-resolved rejection (admission denied / decode
     *  failed); counts serve.requests + serve.errors, never enqueued. */
    std::future<Response> rejectedFuture(u64 id, ErrorKind kind,
                                         std::string message);
    /** Resolve a queued request pulled out by overload shedding. */
    void resolveShed(PendingRequest victim);
    /** Sleep before retry `attempt`, capped by the remaining deadline.
     *  Returns false (and does not sleep) when the budget is gone. */
    bool backoffWithinDeadline(u32 attempt, u64 deadline_ns);
    std::shared_ptr<Session> sessionFor(u64 tenant) const;

    std::shared_ptr<const CkksContext> ctx;
    std::unique_ptr<EvalBackend> backend_;
    KeyCache cache;
    Batcher batcher;
    OverloadGovernor governor_;
    resilience::RetryPolicy retry;
    u64 default_deadline_ms = 0;

    mutable std::mutex sessions_mu;
    std::unordered_map<u64, std::shared_ptr<Session>> sessions;
    u64 next_tenant = 1;

    mutable std::mutex transforms_mu;
    std::map<std::string, LinearTransform> transforms;

    std::mutex drain_mu;
    std::condition_variable drained;
    u64 submitted = 0; ///< guarded by drain_mu
    std::atomic<u64> completed{0};

    telemetry::Counter& req_counter;
    telemetry::Counter& err_counter;
    telemetry::Histogram& lat_hist;

    std::atomic<bool> stopping{false};
    std::thread dispatcher;
};

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_SERVER_H
