#include "serve/keycache.h"

#include "support/env.h"
#include "support/faultinject.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace serve {

namespace {

/**
 * Eviction and re-expansion both hand key material across the
 * "sat in cache memory" boundary, so both ends are guarded by one
 * site: a fault models corruption of the surviving b-half during
 * eviction or of the freshly re-expanded a-half on a miss.
 */
faultinject::Site g_evict_site("serve.evict", faultinject::kLimbKinds);

} // namespace

KeyCache::KeyCache(std::shared_ptr<const CkksContext> ctx_, size_t budget_)
    : ctx(std::move(ctx_)), budget(budget_)
{
}

size_t
KeyCache::budgetFromEnv()
{
    return static_cast<size_t>(env::bytesOr("MADFHE_KEYCACHE_BYTES", 0));
}

KeyCache::EntryId
KeyCache::insert(u64 tenant, std::string name, SwitchingKey* key)
{
    MAD_REQUIRE(key != nullptr, "key cache entry must reference a key");
    const size_t charge = key->aBytes();
    MAD_REQUIRE(budget == 0 || charge <= budget,
                "MADFHE_KEYCACHE_BYTES (" + std::to_string(budget) +
                    ") is smaller than a single expanded key (" +
                    std::to_string(charge) + " bytes)");
    std::lock_guard<std::mutex> lock(mu);
    // Seed-only at rest: a registered key is charged bytes only while
    // a lease (or cache residency) keeps it expanded.
    key->compress();
    EntryId id = next_id++;
    Entry e;
    e.tenant = tenant;
    e.name = std::move(name);
    e.key = key;
    e.charge = charge;
    entries.emplace(id, std::move(e));
    return id;
}

void
KeyCache::eraseTenant(u64 tenant)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto it = entries.begin(); it != entries.end();) {
        if (it->second.tenant != tenant) {
            ++it;
            continue;
        }
        MAD_CHECK(it->second.pins == 0,
                  "cannot erase tenant '" + std::to_string(tenant) +
                      "' while key '" + it->second.name + "' is leased");
        if (it->second.resident) {
            resident_bytes -= it->second.charge;
            lru.erase(it->second.lru_pos);
        }
        it->second.key->compress();
        it = entries.erase(it);
    }
}

void
KeyCache::makeRoom(size_t need)
{
    // Caller holds mu.
    if (budget == 0)
        return;
    auto it = lru.begin();
    while (resident_bytes + need > budget && it != lru.end()) {
        Entry& victim = entries.at(*it);
        if (victim.pins > 0) {
            ++it; // pinned: skip, try the next-oldest
            continue;
        }
        // Guard the surviving b-half across the eviction hand-off: a
        // bit flipped here would poison every later key-switch that
        // uses this key. The buffer is logically mutable (the cache
        // manages the key in place); const_cast scopes that to the
        // fault window.
        faultinject::guardLimb(
            g_evict_site,
            const_cast<u64*>(victim.key->b(0).limb(0)),
            victim.key->b(0).degree());
        victim.key->compress();
        victim.resident = false;
        resident_bytes -= victim.charge;
        ++evictions;
        TELEM_COUNT("serve.keycache.evictions", 1);
        it = lru.erase(it);
    }
    TELEM_GAUGE_SET("serve.keycache.bytes", static_cast<i64>(resident_bytes));
    if (resident_bytes + need > budget) {
        ++overcommits;
        TELEM_COUNT("serve.keycache.overcommit", 1);
    }
}

KeyCache::Lease
KeyCache::acquire(EntryId id)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    MAD_REQUIRE(it != entries.end(), "unknown key cache entry");
    Entry& e = it->second;
    if (e.resident) {
        ++hits;
        TELEM_COUNT("serve.keycache.hits", 1);
        // Refresh recency.
        lru.erase(e.lru_pos);
        e.lru_pos = lru.insert(lru.end(), id);
    } else {
        ++misses;
        TELEM_COUNT("serve.keycache.misses", 1);
        makeRoom(e.charge);
        // Expand and verify *before* charging the budget. Same hand-off
        // guard as eviction on the re-expanded half: a fault here either
        // throws (allocfail/taskthrow) or corrupts the fresh a-half and
        // is caught by the integrity digest. Either way the entry must
        // roll back to seed-only form — committing it would let a later
        // hit serve the corrupt half, and a thrown fault would strand
        // the charge and permanently shrink the effective budget.
        try {
            e.key->expandA(*ctx);
            faultinject::guardLimb(g_evict_site,
                                   const_cast<u64*>(e.key->a(0).limb(0)),
                                   e.key->a(0).degree());
        } catch (...) {
            e.key->compress();
            throw;
        }
        e.resident = true;
        resident_bytes += e.charge;
        peak_bytes = std::max(peak_bytes, resident_bytes);
        e.lru_pos = lru.insert(lru.end(), id);
        TELEM_GAUGE_SET("serve.keycache.bytes",
                        static_cast<i64>(resident_bytes));
        TELEM_GAUGE_SET("serve.keycache.peak_bytes",
                        static_cast<i64>(peak_bytes));
    }
    ++e.pins;
    return Lease(this, id);
}

size_t
KeyCache::evictUnpinned()
{
    std::lock_guard<std::mutex> lock(mu);
    size_t freed = 0;
    for (auto it = lru.begin(); it != lru.end();) {
        Entry& e = entries.at(*it);
        if (e.pins > 0) {
            ++it;
            continue;
        }
        faultinject::guardLimb(g_evict_site,
                               const_cast<u64*>(e.key->b(0).limb(0)),
                               e.key->b(0).degree());
        e.key->compress();
        e.resident = false;
        resident_bytes -= e.charge;
        freed += e.charge;
        ++evictions;
        TELEM_COUNT("serve.keycache.evictions", 1);
        TELEM_COUNT("serve.keycache.proactive_evictions", 1);
        it = lru.erase(it);
    }
    TELEM_GAUGE_SET("serve.keycache.bytes", static_cast<i64>(resident_bytes));
    return freed;
}

void
KeyCache::unpin(EntryId id)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    if (it == entries.end())
        return; // tenant erased while leases were still closing
    MAD_CHECK(it->second.pins > 0, "key cache lease unpinned twice");
    --it->second.pins;
}

void
KeyCache::Lease::release()
{
    if (cache_ != nullptr)
        cache_->unpin(id_);
    cache_ = nullptr;
}

KeyCache::Stats
KeyCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s;
    s.budget_bytes = budget;
    s.resident_bytes = resident_bytes;
    s.peak_bytes = peak_bytes;
    s.entries = entries.size();
    s.resident_entries = lru.size();
    for (const auto& [id, e] : entries)
        if (e.pins > 0)
            ++s.pinned_entries;
    s.hits = hits;
    s.misses = misses;
    s.evictions = evictions;
    s.overcommits = overcommits;
    return s;
}

bool
KeyCache::isResident(EntryId id) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    return it != entries.end() && it->second.resident;
}

std::vector<std::string>
KeyCache::residentNames() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> names;
    names.reserve(lru.size());
    for (EntryId id : lru)
        names.push_back(entries.at(id).name);
    return names;
}

} // namespace serve
} // namespace madfhe
