/**
 * @file
 * Serving request/response types and their wire framing.
 *
 * A frame is a self-contained serialized-v2-style blob: a fixed header
 * (magic, tenant, request id, op, operand metadata) protected by a
 * running FNV-1a checksum checkpoint, followed by the ciphertext
 * payloads as standard serialize-v2 blobs (each carrying its own
 * checksums). Decoding is guarded by the `serve.decode` fault-injection
 * site, so a flipped bit or truncation anywhere in the header surfaces
 * as a typed CorruptStreamError instead of a malformed request — the
 * server stays up and the client gets an error response.
 */
#ifndef MADFHE_SERVE_REQUEST_H
#define MADFHE_SERVE_REQUEST_H

#include <string>
#include <utility>
#include <vector>

#include "ckks/ciphertext.h"
#include "ring/ring.h"

namespace madfhe {
namespace serve {

enum class Op : u8
{
    Put = 0,          ///< store cts[0] under `name`
    Get = 1,          ///< fetch the ciphertext stored under `name`
    Encrypt = 2,      ///< encode+encrypt `values` under the tenant pk
    EvalAdd = 3,      ///< cts[0] + cts[1] (or store[name] + cts[0])
    EvalMul = 4,      ///< cts[0] * cts[1], relinearized + rescaled
    Rotate = 5,       ///< rotate cts[0] by each step (hoisted when >1)
    MatVec = 6,       ///< apply server transform `name` to cts[0]
    DecryptShare = 7, ///< decrypt cts[0] with the tenant demo key
    Bootstrap = 8,    ///< refresh cts[0] to max level (virtual backend)
};

const char* opName(Op op);

struct Request
{
    u64 tenant = 0;
    u64 id = 0;
    Op op = Op::Get;
    /** Millisecond deadline budget, measured from server receipt; 0
     *  means "no deadline" (fall back to MADFHE_DEADLINE_MS). Relative
     *  on the wire because monotonic clocks do not cross machines. */
    u64 deadline_ms = 0;
    std::string name;            ///< KV key / transform name
    std::vector<int> steps;      ///< Rotate steps
    std::vector<double> values;  ///< Encrypt payload (real slots)
    std::vector<Ciphertext> cts; ///< ciphertext operands
};

/** Typed error classification carried back over the wire so callers
 *  (and the fault campaign) can rethrow what the server caught. */
enum class ErrorKind : u8
{
    None = 0,
    User = 1,          ///< UserError: caller misuse
    CorruptStream = 2, ///< request/payload bytes failed validation
    FaultDetected = 3, ///< integrity check fired during evaluation
    Injected = 4,      ///< faultinject::InjectedFault (test harness)
    BadAlloc = 5,
    Other = 6,
    Overloaded = 7,        ///< shed by admission control / open breaker
    DeadlineExceeded = 8,  ///< deadline expired before completion
};

/**
 * True for error kinds a retry can plausibly cure: transient data
 * corruption (CorruptStream/FaultDetected/Injected — a deterministic
 * re-execution avoids a one-shot fault), memory pressure (BadAlloc),
 * and shed requests (Overloaded — retry after backoff). Never true for
 * caller misuse (User) or an expired deadline (retrying with the same
 * deadline cannot succeed).
 */
bool transientErrorKind(ErrorKind kind);

struct Response
{
    u64 id = 0;
    bool ok = false;
    ErrorKind error_kind = ErrorKind::None;
    std::string error;
    std::vector<Ciphertext> cts;
    std::vector<double> values; ///< DecryptShare output
};

/** Re-raise a failed response as the typed error the server caught;
 *  no-op when resp.ok. */
void throwIfError(const Response& resp);

/**
 * Classify the in-flight exception into the wire taxonomy, preserving
 * the MadError kind and its file:line + op breadcrumbs in the message.
 * Must be called from inside a catch block. Invariant violations map to
 * Other with the breadcrumbed what() intact and bump the
 * serve.errors.invariant counter; truly unknown (non-std::exception)
 * throws bump serve.errors.unclassified — nothing is silently erased.
 */
std::pair<ErrorKind, std::string> classifyCurrentException();

// --- wire framing ---------------------------------------------------------

std::string encodeRequest(const Request& req);
Request decodeRequest(const std::string& frame,
                      std::shared_ptr<const RingContext> ring);

std::string encodeResponse(const Response& resp);
Response decodeResponse(const std::string& frame,
                        std::shared_ptr<const RingContext> ring);

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_REQUEST_H
