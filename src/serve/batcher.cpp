#include "serve/batcher.h"

#include "support/env.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace serve {

BatchKey
batchKeyFor(const Request& req, size_t max_level)
{
    BatchKey key;
    key.op = req.op;
    key.name = req.name;
    key.steps = req.steps;
    key.level = req.cts.empty() ? max_level : req.cts[0].level();
    switch (req.op) {
    case Op::Encrypt:
    case Op::EvalAdd:
    case Op::EvalMul:
    case Op::Rotate:
    case Op::MatVec:
    case Op::Bootstrap:
        key.coalescable = true;
        break;
    case Op::Put:
    case Op::Get:
    case Op::DecryptShare:
        key.coalescable = false;
        break;
    }
    return key;
}

Batcher::Batcher(size_t max_level_, size_t max_batch_)
    : max_level(max_level_),
      max_batch(max_batch_ != 0 ? max_batch_ : maxBatchFromEnv())
{
    MAD_REQUIRE(max_batch >= 1, "batch size cap must be at least 1");
}

size_t
Batcher::maxBatchFromEnv()
{
    return static_cast<size_t>(env::u64Or("MADFHE_BATCH_MAX", 8));
}

void
Batcher::push(PendingRequest p)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        MAD_REQUIRE(!closed, "server is stopping; request rejected");
        pending.push_back(std::move(p));
    }
    ready.notify_one();
}

size_t
Batcher::depth() const
{
    std::lock_guard<std::mutex> lock(mu);
    return pending.size();
}

void
Batcher::setEffectiveMaxBatch(size_t cap)
{
    if (cap > max_batch)
        cap = max_batch;
    effective_max.store(cap, std::memory_order_relaxed);
}

size_t
Batcher::effectiveMaxBatch() const
{
    const size_t cap = effective_max.load(std::memory_order_relaxed);
    return cap == 0 ? max_batch : std::max<size_t>(1, cap);
}

std::optional<PendingRequest>
Batcher::shedEarliestDeadline(u64 than_deadline_ns)
{
    std::lock_guard<std::mutex> lock(mu);
    auto victim = pending.end();
    for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->deadline_ns >= than_deadline_ns)
            continue;
        if (victim == pending.end() || it->deadline_ns < victim->deadline_ns)
            victim = it;
    }
    if (victim == pending.end())
        return std::nullopt;
    PendingRequest shed = std::move(*victim);
    pending.erase(victim);
    return shed;
}

std::vector<Batch>
Batcher::waitDrain()
{
    std::unique_lock<std::mutex> lock(mu);
    ready.wait(lock, [&] { return closed || !pending.empty(); });
    const size_t cap = effectiveMaxBatch();
    std::vector<Batch> batches;
    while (!pending.empty()) {
        PendingRequest p = std::move(pending.front());
        pending.pop_front();
        BatchKey key = batchKeyFor(p.req, max_level);
        Batch* open = batches.empty() ? nullptr : &batches.back();
        const bool joins = open != nullptr && open->key.coalescable &&
                           key.coalescable && open->key == key &&
                           open->items.size() < cap;
        if (!joins) {
            batches.push_back(Batch{std::move(key), {}});
            open = &batches.back();
        }
        open->items.push_back(std::move(p));
    }
    for (const Batch& b : batches) {
        TELEM_COUNT("serve.batches", 1);
        TELEM_HIST("serve.batch.size", b.items.size());
        if (b.items.size() > 1)
            TELEM_COUNT("serve.batch.coalesced", b.items.size());
    }
    return batches;
}

void
Batcher::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
    }
    ready.notify_all();
}

} // namespace serve
} // namespace madfhe
