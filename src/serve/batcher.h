/**
 * @file
 * Batcher: coalesces compatible serving requests into evaluator-pass
 * batches.
 *
 * Compatibility is a structural key — same op, same operand level, same
 * rotation set / transform name — because those are the requests one
 * evaluator pass can serve with shared setup: one pinned (expanded) key
 * per tenant for the whole batch instead of one expansion per request,
 * and one threadpool fan-out across the batch items.
 *
 * Grouping only merges *adjacent* compatible requests (classic
 * batching): a request joins the currently open batch when its key
 * matches, otherwise the open batch is sealed and a new one opens.
 * Sealed batches execute strictly in formation order, so stateful ops
 * (Put/Get on the encrypted KV store) keep their arrival order across
 * batch boundaries and results are independent of batch shape.
 */
#ifndef MADFHE_SERVE_BATCHER_H
#define MADFHE_SERVE_BATCHER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace madfhe {
namespace serve {

/** Structural compatibility key of one request. */
struct BatchKey
{
    Op op = Op::Get;
    u64 level = 0;
    std::string name;
    std::vector<int> steps;
    /** Stateless eval-family ops may share a batch; KV ops never do. */
    bool coalescable = false;

    bool
    operator==(const BatchKey& o) const
    {
        return op == o.op && level == o.level && name == o.name &&
               steps == o.steps;
    }
};

BatchKey batchKeyFor(const Request& req, size_t max_level);

struct PendingRequest
{
    Request req;
    std::promise<Response> promise;
    /** Absolute monotonic deadline (~u64{0} = none), resolved by the
     *  server at submit time from req.deadline_ms / MADFHE_DEADLINE_MS. */
    u64 deadline_ns = ~u64{0};
    /** Monotonic submit timestamp (queueing-delay attribution). */
    u64 enqueue_ns = 0;
};

struct Batch
{
    BatchKey key;
    std::vector<PendingRequest> items;
};

class Batcher
{
  public:
    /** @param max_level   Fresh-ciphertext level (Encrypt batch key).
     *  @param max_batch   Requests per batch cap; 0 reads
     *                     MADFHE_BATCH_MAX (default 8). */
    Batcher(size_t max_level, size_t max_batch);

    static size_t maxBatchFromEnv();

    /** Enqueue one request (thread-safe; wakes the dispatcher). */
    void push(PendingRequest p);

    /**
     * Block until requests are pending or the batcher is closed, then
     * group everything pending into batches. Returns an empty vector
     * only when closed and drained.
     */
    std::vector<Batch> waitDrain();

    /** Wake waiters; subsequent waitDrain calls stop blocking. */
    void close();

    size_t maxBatch() const { return max_batch; }

    /** Currently queued (not yet drained) requests. */
    size_t depth() const;

    /**
     * Degradation hook: cap batches at `cap` (clamped to [1, maxBatch])
     * until restored; 0 restores the configured cap. Takes effect on
     * the next waitDrain pass.
     */
    void setEffectiveMaxBatch(size_t cap);
    size_t effectiveMaxBatch() const;

    /**
     * Overload shedding: remove and return the queued request whose
     * deadline is earliest *and* earlier than `than_deadline_ns` — the
     * request most likely to miss its deadline anyway. Returns nullopt
     * when nothing queued expires sooner than that bound (the caller
     * should shed the incoming request instead).
     */
    std::optional<PendingRequest> shedEarliestDeadline(u64 than_deadline_ns);

  private:
    size_t max_level;
    size_t max_batch;
    std::atomic<size_t> effective_max{0}; ///< 0 = use max_batch

    mutable std::mutex mu;
    std::condition_variable ready;
    std::deque<PendingRequest> pending;
    bool closed = false;
};

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_BATCHER_H
