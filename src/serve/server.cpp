#include "serve/server.h"

#include "ckks/encryptor.h"
#include "support/faultinject.h"
#include "support/threadpool.h"

namespace madfhe {
namespace serve {

namespace {

/**
 * Classify the in-flight exception into the wire taxonomy. Must be
 * called from inside a catch block. Order matters: most-derived first
 * (CorruptStreamError is a UserError; InjectedFault is a runtime_error).
 */
std::pair<ErrorKind, std::string>
classifyCurrentException()
{
    try {
        throw;
    } catch (const faultinject::InjectedFault& e) {
        return {ErrorKind::Injected, e.what()};
    } catch (const FaultDetectedError& e) {
        return {ErrorKind::FaultDetected, e.what()};
    } catch (const CorruptStreamError& e) {
        return {ErrorKind::CorruptStream, e.what()};
    } catch (const UserError& e) {
        return {ErrorKind::User, e.what()};
    } catch (const std::bad_alloc&) {
        return {ErrorKind::BadAlloc, "out of memory"};
    } catch (const std::exception& e) {
        return {ErrorKind::Other, e.what()};
    } catch (...) {
        return {ErrorKind::Other, "unknown error"};
    }
}

/**
 * Detach the current thread from any open span for the duration of one
 * request, so a request's span path is always "tenant-N/<Op>" whether
 * it ran inline under the batch span or inside a pool worker.
 */
class SpanRebase
{
  public:
    SpanRebase() : saved(telemetry::detail::currentNode())
    {
        telemetry::detail::currentNode() = nullptr;
    }
    ~SpanRebase() { telemetry::detail::currentNode() = saved; }

    SpanRebase(const SpanRebase&) = delete;
    SpanRebase& operator=(const SpanRebase&) = delete;

  private:
    telemetry::SpanNode* saved;
};

} // namespace

Server::Server(std::shared_ptr<const CkksContext> ctx_, ServerOptions options)
    : ctx(std::move(ctx_)),
      encoder(ctx),
      eval(ctx),
      cache(ctx, options.keycache_bytes ? *options.keycache_bytes
                                        : KeyCache::budgetFromEnv()),
      batcher(ctx->maxLevel(), options.max_batch.value_or(0)),
      req_counter(telemetry::counter("serve.requests")),
      err_counter(telemetry::counter("serve.errors")),
      lat_hist(telemetry::histogram("serve.latency_ns"))
{
    dispatcher = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    stop();
}

void
Server::stop()
{
    bool expected = false;
    if (stopping.compare_exchange_strong(expected, true))
        batcher.close();
    if (dispatcher.joinable())
        dispatcher.join();
}

u64
Server::addTenant(TenantKeys keys)
{
    std::lock_guard<std::mutex> lock(sessions_mu);
    const u64 id = next_tenant++;
    sessions.emplace(
        id, std::make_shared<Session>(id, ctx, cache, std::move(keys)));
    return id;
}

void
Server::removeTenant(u64 tenant)
{
    std::shared_ptr<Session> doomed; // destroyed outside the lock
    std::lock_guard<std::mutex> lock(sessions_mu);
    auto it = sessions.find(tenant);
    MAD_REQUIRE(it != sessions.end(), "removeTenant: unknown tenant");
    doomed = std::move(it->second);
    sessions.erase(it);
}

std::shared_ptr<Session>
Server::sessionFor(u64 tenant) const
{
    std::lock_guard<std::mutex> lock(sessions_mu);
    auto it = sessions.find(tenant);
    return it == sessions.end() ? nullptr : it->second;
}

void
Server::registerTransform(const std::string& name, LinearTransform t)
{
    std::lock_guard<std::mutex> lock(transforms_mu);
    transforms.erase(name);
    transforms.emplace(name, std::move(t));
}

std::vector<int>
Server::transformRotations(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(transforms_mu);
    auto it = transforms.find(name);
    MAD_REQUIRE(it != transforms.end(),
                "transformRotations: unknown transform '" + name + "'");
    return it->second.requiredRotations();
}

u64
Server::encryptionSeedFor(u64 tenant, u64 request_id)
{
    u64 x = tenant * 0x9E3779B97F4A7C15ULL + request_id + 0x2545F4914F6CDD1DULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

std::future<Response>
Server::submit(Request req)
{
    PendingRequest p;
    p.req = std::move(req);
    std::future<Response> fut = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(drain_mu);
        ++submitted;
    }
    try {
        batcher.push(std::move(p));
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(drain_mu);
            --submitted;
        }
        throw;
    }
    return fut;
}

std::future<Response>
Server::submitFrame(const std::string& frame)
{
    try {
        return submit(decodeRequest(frame, ctx->ring()));
    } catch (...) {
        Response resp;
        auto classified = classifyCurrentException();
        resp.ok = false;
        resp.error_kind = classified.first;
        resp.error = classified.second;
        if (telemetry::enabled(telemetry::Level::Counters)) {
            req_counter.add(1);
            err_counter.add(1);
        }
        std::promise<Response> pr;
        pr.set_value(std::move(resp));
        return pr.get_future();
    }
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(drain_mu);
    drained.wait(lock, [&] { return completed.load() >= submitted; });
}

void
Server::dispatchLoop()
{
    for (;;) {
        std::vector<Batch> batches = batcher.waitDrain();
        if (batches.empty())
            return; // closed and drained
        for (Batch& b : batches)
            executeBatch(b);
    }
}

void
Server::executeBatch(Batch& batch)
{
    TELEM_SPAN("Serve.Batch");

    // Pin every switching key the batch needs, once per tenant — this
    // is the batching win: one expansion amortized over the whole run
    // of compatible requests. All items of a batch share a BatchKey, so
    // the key set depends only on (op, steps, name).
    struct TenantPrep
    {
        std::shared_ptr<Session> session;
        bool ok = true;
        ErrorKind kind = ErrorKind::None;
        std::string error;
    };
    std::map<u64, TenantPrep> prep;
    std::vector<KeyCache::Lease> leases;
    leases.reserve(batch.items.size());

    for (const PendingRequest& item : batch.items) {
        const u64 tenant = item.req.tenant;
        if (prep.count(tenant) != 0)
            continue;
        TenantPrep p;
        p.session = sessionFor(tenant);
        if (!p.session) {
            p.ok = false;
            p.kind = ErrorKind::User;
            p.error = "unknown tenant";
            prep.emplace(tenant, std::move(p));
            continue;
        }
        try {
            switch (batch.key.op) {
            case Op::EvalMul:
                leases.push_back(p.session->relin());
                break;
            case Op::Rotate:
                for (int step : item.req.steps)
                    if (step != 0)
                        leases.push_back(
                            p.session->galois(ring()->galoisElt(step)));
                break;
            case Op::MatVec:
                for (int step : transformRotations(item.req.name))
                    if (step != 0)
                        leases.push_back(
                            p.session->galois(ring()->galoisElt(step)));
                break;
            default:
                break;
            }
        } catch (...) {
            auto classified = classifyCurrentException();
            p.ok = false;
            p.kind = classified.first;
            p.error = classified.second;
        }
        prep.emplace(tenant, std::move(p));
    }

    auto runOne = [&](size_t i) {
        PendingRequest& item = batch.items[i];
        TenantPrep& p = prep.at(item.req.tenant);
        if (!p.ok) {
            Response resp;
            resp.id = item.req.id;
            resp.ok = false;
            resp.error_kind = p.kind;
            resp.error = p.error;
            finish(item, p.session.get(), std::move(resp),
                   telemetry::nowNs());
            return;
        }
        execItem(item, *p.session);
    };

    if (batch.key.coalescable && batch.items.size() > 1)
        ThreadPool::global().run(batch.items.size(), runOne);
    else
        for (size_t i = 0; i < batch.items.size(); ++i)
            runOne(i);
}

void
Server::execItem(PendingRequest& item, Session& session)
{
    const u64 t0 = telemetry::nowNs();
    Response resp;
    resp.id = item.req.id;
    try {
        SpanRebase rebase;
        telemetry::Span tenant_span(session.label());
        telemetry::Span op_span(opName(item.req.op));
        resp = executeOne(session, item.req);
        resp.id = item.req.id;
    } catch (...) {
        auto classified = classifyCurrentException();
        resp = Response{};
        resp.id = item.req.id;
        resp.ok = false;
        resp.error_kind = classified.first;
        resp.error = classified.second;
    }
    finish(item, &session, std::move(resp), t0);
}

void
Server::finish(PendingRequest& item, Session* session, Response resp, u64 t0)
{
    if (telemetry::enabled(telemetry::Level::Counters)) {
        const u64 dur = telemetry::nowNs() - t0;
        req_counter.add(1);
        lat_hist.record(dur);
        if (session) {
            session->requestCounter().add(1);
            session->latencyHistogram().record(dur);
        }
        if (!resp.ok) {
            err_counter.add(1);
            if (session)
                session->errorCounter().add(1);
        }
    }
    item.promise.set_value(std::move(resp));
    completed.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(drain_mu);
    }
    drained.notify_all();
}

Response
Server::executeOne(Session& session, const Request& req)
{
    Response resp;
    resp.id = req.id;
    switch (req.op) {
    case Op::Put:
        MAD_REQUIRE(!req.name.empty(), "Put: empty key name");
        MAD_REQUIRE(req.cts.size() == 1, "Put: expected exactly 1 ciphertext");
        session.put(req.name, req.cts[0]);
        break;

    case Op::Get: {
        MAD_REQUIRE(!req.name.empty(), "Get: empty key name");
        std::optional<Ciphertext> stored = session.get(req.name);
        MAD_REQUIRE(stored.has_value(),
                    "Get: nothing stored under '" + req.name + "'");
        resp.cts.push_back(std::move(*stored));
        break;
    }

    case Op::Encrypt: {
        MAD_REQUIRE(req.values.size() <= ctx->slots(),
                    "Encrypt: more values than slots");
        const Plaintext pt =
            encoder.encodeReal(req.values, ctx->scale(), ctx->maxLevel());
        Encryptor enc(ctx, session.publicKey(),
                      encryptionSeedFor(req.tenant, req.id));
        resp.cts.push_back(enc.encrypt(pt));
        break;
    }

    case Op::EvalAdd: {
        if (!req.name.empty()) {
            MAD_REQUIRE(req.cts.size() == 1,
                        "EvalAdd with a stored operand takes 1 ciphertext");
            std::optional<Ciphertext> stored = session.get(req.name);
            MAD_REQUIRE(stored.has_value(),
                        "EvalAdd: nothing stored under '" + req.name + "'");
            resp.cts.push_back(eval.addAligned(*stored, req.cts[0]));
        } else {
            MAD_REQUIRE(req.cts.size() == 2,
                        "EvalAdd: expected 2 ciphertexts");
            resp.cts.push_back(eval.addAligned(req.cts[0], req.cts[1]));
        }
        break;
    }

    case Op::EvalMul:
        MAD_REQUIRE(req.cts.size() == 2, "EvalMul: expected 2 ciphertexts");
        resp.cts.push_back(
            eval.mul(req.cts[0], req.cts[1], session.relinKey()));
        break;

    case Op::Rotate: {
        MAD_REQUIRE(req.cts.size() == 1, "Rotate: expected 1 ciphertext");
        MAD_REQUIRE(!req.steps.empty(), "Rotate: no steps given");
        if (req.steps.size() == 1) {
            resp.cts.push_back(
                req.steps[0] == 0
                    ? req.cts[0]
                    : eval.rotate(req.cts[0], req.steps[0],
                                  session.galoisKeys()));
        } else {
            resp.cts = eval.rotateHoisted(req.cts[0], req.steps,
                                          session.galoisKeys());
        }
        break;
    }

    case Op::MatVec: {
        MAD_REQUIRE(req.cts.size() == 1, "MatVec: expected 1 ciphertext");
        const LinearTransform* t = nullptr;
        {
            // Map nodes are stable; apply() runs outside the lock so
            // MatVec batch items can fan out across the pool.
            std::lock_guard<std::mutex> lock(transforms_mu);
            auto it = transforms.find(req.name);
            MAD_REQUIRE(it != transforms.end(),
                        "MatVec: unknown transform '" + req.name + "'");
            t = &it->second;
        }
        resp.cts.push_back(
            t->apply(eval, encoder, req.cts[0], session.galoisKeys()));
        break;
    }

    case Op::DecryptShare: {
        MAD_REQUIRE(req.cts.size() == 1,
                    "DecryptShare: expected 1 ciphertext");
        MAD_REQUIRE(session.secretKey().has_value(),
                    "DecryptShare: tenant registered no demo secret key");
        Decryptor dec(ctx, *session.secretKey());
        const Plaintext pt = dec.decrypt(req.cts[0]);
        const std::vector<std::complex<double>> slots = encoder.decode(pt);
        resp.values.reserve(slots.size());
        for (const std::complex<double>& s : slots)
            resp.values.push_back(s.real());
        break;
    }
    }
    resp.ok = true;
    return resp;
}

} // namespace serve
} // namespace madfhe
