#include "serve/server.h"

#include <chrono>
#include <thread>

#include "ckks/encryptor.h"
#include "ckks/stream.h"
#include "support/env.h"
#include "support/faultinject.h"
#include "support/threadpool.h"
#include "virtual/backend.h"

namespace madfhe {
namespace serve {

namespace {

// classifyCurrentException() moved to serve/request.cpp so the TCP
// front end reports the same typed errors the dispatcher does.

/**
 * Detach the current thread from any open span for the duration of one
 * request, so a request's span path is always "tenant-N/<Op>" whether
 * it ran inline under the batch span or inside a pool worker.
 */
class SpanRebase
{
  public:
    SpanRebase() : saved(telemetry::detail::currentNode())
    {
        telemetry::detail::currentNode() = nullptr;
    }
    ~SpanRebase() { telemetry::detail::currentNode() = saved; }

    SpanRebase(const SpanRebase&) = delete;
    SpanRebase& operator=(const SpanRebase&) = delete;

  private:
    telemetry::SpanNode* saved;
};

} // namespace

Server::Server(std::shared_ptr<const CkksContext> ctx_, ServerOptions options)
    : ctx(std::move(ctx_)),
      backend_(vbackend::makeEvalBackend(
          options.backend ? *options.backend : backendKindFromEnv(), ctx)),
      cache(ctx, options.keycache_bytes ? *options.keycache_bytes
                                        : KeyCache::budgetFromEnv()),
      batcher(ctx->maxLevel(), options.max_batch.value_or(0)),
      governor_(options.governor ? *options.governor
                                 : GovernorOptions::fromEnv()),
      retry(options.retry ? *options.retry
                          : resilience::RetryPolicy::fromEnv()),
      default_deadline_ms(options.default_deadline_ms
                              ? *options.default_deadline_ms
                              : env::u64Or("MADFHE_DEADLINE_MS", 0)),
      req_counter(telemetry::counter("serve.requests")),
      err_counter(telemetry::counter("serve.errors")),
      lat_hist(telemetry::histogram("serve.latency_ns"))
{
    dispatcher = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    stop();
}

void
Server::stop()
{
    bool expected = false;
    if (stopping.compare_exchange_strong(expected, true))
        batcher.close();
    if (dispatcher.joinable())
        dispatcher.join();
}

u64
Server::addTenant(TenantKeys keys)
{
    std::lock_guard<std::mutex> lock(sessions_mu);
    const u64 id = next_tenant++;
    sessions.emplace(
        id, std::make_shared<Session>(id, ctx, cache, std::move(keys)));
    return id;
}

void
Server::removeTenant(u64 tenant)
{
    std::shared_ptr<Session> doomed; // destroyed outside the lock
    std::lock_guard<std::mutex> lock(sessions_mu);
    auto it = sessions.find(tenant);
    MAD_REQUIRE(it != sessions.end(), "removeTenant: unknown tenant");
    doomed = std::move(it->second);
    sessions.erase(it);
    governor_.forgetTenant(tenant);
}

std::shared_ptr<Session>
Server::sessionFor(u64 tenant) const
{
    std::lock_guard<std::mutex> lock(sessions_mu);
    auto it = sessions.find(tenant);
    return it == sessions.end() ? nullptr : it->second;
}

void
Server::registerTransform(const std::string& name, LinearTransform t)
{
    std::lock_guard<std::mutex> lock(transforms_mu);
    transforms.erase(name);
    transforms.emplace(name, std::move(t));
}

std::vector<int>
Server::transformRotations(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(transforms_mu);
    auto it = transforms.find(name);
    MAD_REQUIRE(it != transforms.end(),
                "transformRotations: unknown transform '" + name + "'");
    return it->second.requiredRotations();
}

u64
Server::encryptionSeedFor(u64 tenant, u64 request_id)
{
    u64 x = tenant * 0x9E3779B97F4A7C15ULL + request_id + 0x2545F4914F6CDD1DULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

std::future<Response>
Server::rejectedFuture(u64 id, ErrorKind kind, std::string message)
{
    Response resp;
    resp.id = id;
    resp.ok = false;
    resp.error_kind = kind;
    resp.error = std::move(message);
    if (telemetry::enabled(telemetry::Level::Counters)) {
        req_counter.add(1);
        err_counter.add(1);
    }
    std::promise<Response> pr;
    pr.set_value(std::move(resp));
    return pr.get_future();
}

void
Server::resolveShed(PendingRequest victim)
{
    Response resp;
    resp.id = victim.req.id;
    resp.ok = false;
    resp.error_kind = ErrorKind::Overloaded;
    resp.error = "request shed under overload (earliest deadline first)";
    TELEM_COUNT("serve.shed", 1);
    std::shared_ptr<Session> session = sessionFor(victim.req.tenant);
    // t0 is telemetry's process-relative clock, not the monotonic
    // enqueue stamp — shed requests record ~0 latency by design.
    finish(victim, session.get(), std::move(resp), telemetry::nowNs(),
           /*executed=*/false);
}

std::future<Response>
Server::submit(Request req)
{
    const u64 now = resilience::monotonicNs();
    const u64 tenant = req.tenant;

    // Resolve the deadline at the admission boundary: the wire carries
    // a relative budget (monotonic clocks don't cross machines); from
    // here on every check compares against one absolute timestamp.
    const u64 ddl_ms =
        req.deadline_ms != 0 ? req.deadline_ms : default_deadline_ms;
    const resilience::Deadline deadline =
        ddl_ms != 0 ? resilience::Deadline::afterMs(ddl_ms, now)
                    : resilience::Deadline();

    // admit() reserves the in-flight slot atomically with its checks;
    // every path below must release it through exactly one onFinish.
    bool global_full = false;
    if (auto rej = governor_.admit(tenant, now, global_full))
        return rejectedFuture(req.id, rej->kind, std::move(rej->message));

    if (global_full) {
        // Shed the queued request most likely to miss its deadline
        // anyway; if nothing queued expires sooner than the incoming
        // request would, the incoming request is the right victim.
        std::optional<PendingRequest> victim =
            batcher.shedEarliestDeadline(deadline.absNs());
        if (!victim) {
            TELEM_COUNT("serve.shed", 1);
            governor_.onFinish(tenant, false, ErrorKind::Overloaded,
                               /*executed=*/false,
                               resilience::monotonicNs());
            return rejectedFuture(
                req.id, ErrorKind::Overloaded,
                "server queue full (" +
                    std::to_string(governor_.options().queue_depth) +
                    " in flight)");
        }
        resolveShed(std::move(*victim));
    }

    PendingRequest p;
    p.req = std::move(req);
    p.deadline_ns = deadline.absNs();
    p.enqueue_ns = now;
    std::future<Response> fut = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(drain_mu);
        ++submitted;
    }
    try {
        batcher.push(std::move(p));
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(drain_mu);
            --submitted;
        }
        governor_.onFinish(tenant, false, ErrorKind::Other,
                           /*executed=*/false, resilience::monotonicNs());
        throw;
    }
    return fut;
}

std::future<Response>
Server::submitFrame(const std::string& frame)
{
    // Decode faults (the serve.decode site) are transient: the frame
    // bytes are still intact in `frame`, so a bounded re-decode turns
    // an injected corruption into the identical clean request.
    u32 attempts = 0;
    for (;;) {
        try {
            ++attempts;
            return submit(decodeRequest(frame, ctx->ring()));
        } catch (...) {
            auto classified = classifyCurrentException();
            if (retry.shouldRetry(attempts,
                                  transientErrorKind(classified.first))) {
                TELEM_COUNT("serve.retry", 1);
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(retry.backoffNs(attempts)));
                continue;
            }
            return rejectedFuture(0, classified.first,
                                  std::move(classified.second));
        }
    }
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(drain_mu);
    drained.wait(lock, [&] { return completed.load() >= submitted; });
}

bool
Server::backoffWithinDeadline(u32 attempt, u64 deadline_ns)
{
    const u64 backoff = retry.backoffNs(attempt);
    if (deadline_ns != ~u64{0}) {
        const u64 now = resilience::monotonicNs();
        // No headroom to back off and still run: retrying would only
        // turn a transient failure into a deadline miss.
        if (now >= deadline_ns || deadline_ns - now <= backoff)
            return false;
    }
    TELEM_COUNT("serve.retry", 1);
    std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    return true;
}

void
Server::dispatchLoop()
{
    for (;;) {
        std::vector<Batch> batches = batcher.waitDrain();
        if (batches.empty())
            return; // closed and drained
        for (Batch& b : batches) {
            executeBatch(b);
            // Degradation feedback: overcommit observed during this
            // batch steps the level down (stream-policy cap + proactive
            // eviction here, batch shrink for the next drain pass);
            // clean batches step back up.
            governor_.observeCachePressure(cache);
            batcher.setEffectiveMaxBatch(
                governor_.degradeLevel() == 0
                    ? 0
                    : governor_.cappedBatchMax(batcher.maxBatch()));
        }
    }
}

void
Server::executeBatch(Batch& batch)
{
    TELEM_SPAN("Serve.Batch");

    // Under memory pressure, cap the stream policy for this pass: the
    // leaner schedules (Cache, then Fuse) pin strictly smaller working
    // sets while producing byte-identical ciphertexts, so degradation
    // trades latency, never correctness.
    const StreamPolicy ambient = streamPolicy();
    const StreamPolicy capped = governor_.cappedPolicy(ambient);
    std::optional<ScopedStreamPolicy> degrade_scope;
    if (capped != ambient) {
        degrade_scope.emplace(capped);
        TELEM_COUNT("serve.degrade.policy_capped", 1);
    }

    // Pin every switching key the batch needs, once per tenant — this
    // is the batching win: one expansion amortized over the whole run
    // of compatible requests. All items of a batch share a BatchKey, so
    // the key set depends only on (op, steps, name).
    struct TenantPrep
    {
        std::shared_ptr<Session> session;
        bool ok = true;
        ErrorKind kind = ErrorKind::None;
        std::string error;
    };
    std::map<u64, TenantPrep> prep;
    std::vector<KeyCache::Lease> leases;
    leases.reserve(batch.items.size());

    for (const PendingRequest& item : batch.items) {
        const u64 tenant = item.req.tenant;
        if (prep.count(tenant) != 0)
            continue;
        TenantPrep p;
        p.session = sessionFor(tenant);
        if (!p.session) {
            p.ok = false;
            p.kind = ErrorKind::User;
            p.error = "unknown tenant";
            prep.emplace(tenant, std::move(p));
            continue;
        }
        // Key pinning can hit a transient fault (the serve.evict site
        // guards re-expansion); acquire() rolls the entry back to
        // seed-only form on failure, so a retry simply re-expands. An
        // extra lease from a partially-pinned earlier attempt is
        // harmless: pins are counted and all release at batch end.
        u32 attempts = 0;
        for (;;) {
            try {
                ++attempts;
                switch (batch.key.op) {
                case Op::EvalMul:
                    leases.push_back(p.session->relin());
                    break;
                case Op::Rotate:
                    for (int step : item.req.steps)
                        if (step != 0)
                            leases.push_back(
                                p.session->galois(ring()->galoisElt(step)));
                    break;
                case Op::MatVec:
                    for (int step : transformRotations(item.req.name))
                        if (step != 0)
                            leases.push_back(
                                p.session->galois(ring()->galoisElt(step)));
                    break;
                default:
                    break;
                }
                break;
            } catch (...) {
                auto classified = classifyCurrentException();
                if (retry.shouldRetry(attempts,
                                      transientErrorKind(classified.first)) &&
                    backoffWithinDeadline(attempts, item.deadline_ns))
                    continue;
                p.ok = false;
                p.kind = classified.first;
                p.error = classified.second;
                break;
            }
        }
        prep.emplace(tenant, std::move(p));
    }

    auto runOne = [&](size_t i) {
        PendingRequest& item = batch.items[i];
        TenantPrep& p = prep.at(item.req.tenant);
        if (item.deadline_ns != ~u64{0}) {
            const u64 now = resilience::monotonicNs();
            if (now >= item.deadline_ns) {
                Response resp;
                resp.id = item.req.id;
                resp.ok = false;
                resp.error_kind = ErrorKind::DeadlineExceeded;
                resp.error = "deadline expired before execution";
                TELEM_COUNT("serve.deadline_expired", 1);
                finish(item, p.session.get(), std::move(resp),
                       telemetry::nowNs(), /*executed=*/false);
                return;
            }
            TELEM_HIST("serve.deadline_remaining_ns", item.deadline_ns - now);
        }
        if (!p.ok) {
            Response resp;
            resp.id = item.req.id;
            resp.ok = false;
            resp.error_kind = p.kind;
            resp.error = p.error;
            finish(item, p.session.get(), std::move(resp),
                   telemetry::nowNs());
            return;
        }
        execItem(item, *p.session);
    };

    if (batch.key.coalescable && batch.items.size() > 1)
        ThreadPool::global().run(batch.items.size(), runOne);
    else
        for (size_t i = 0; i < batch.items.size(); ++i)
            runOne(i);
}

void
Server::execItem(PendingRequest& item, Session& session)
{
    const u64 t0 = telemetry::nowNs();
    Response resp;
    resp.id = item.req.id;
    // Bounded retry on transient failures. Every op is a deterministic
    // function of (request, session state) and injected faults fire on
    // an occurrence count that has already advanced, so a retried
    // success is byte-identical to the fault-free execution.
    u32 attempts = 0;
    for (;;) {
        try {
            ++attempts;
            SpanRebase rebase;
            telemetry::Span tenant_span(session.label());
            telemetry::Span op_span(opName(item.req.op));
            resp = executeOne(session, item.req);
            resp.id = item.req.id;
            break;
        } catch (...) {
            auto classified = classifyCurrentException();
            if (retry.shouldRetry(attempts,
                                  transientErrorKind(classified.first)) &&
                backoffWithinDeadline(attempts, item.deadline_ns))
                continue;
            resp = Response{};
            resp.id = item.req.id;
            resp.ok = false;
            resp.error_kind = classified.first;
            resp.error = classified.second;
            break;
        }
    }
    finish(item, &session, std::move(resp), t0);
}

void
Server::finish(PendingRequest& item, Session* session, Response resp, u64 t0,
               bool executed)
{
    if (telemetry::enabled(telemetry::Level::Counters)) {
        const u64 dur = telemetry::nowNs() - t0;
        req_counter.add(1);
        lat_hist.record(dur);
        if (session) {
            session->requestCounter().add(1);
            session->latencyHistogram().record(dur);
        }
        if (!resp.ok) {
            err_counter.add(1);
            if (session)
                session->errorCounter().add(1);
        }
    }
    governor_.onFinish(item.req.tenant, resp.ok, resp.error_kind, executed,
                       resilience::monotonicNs());
    item.promise.set_value(std::move(resp));
    completed.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(drain_mu);
    }
    drained.notify_all();
}

Response
Server::executeOne(Session& session, const Request& req)
{
    Response resp;
    resp.id = req.id;
    switch (req.op) {
    case Op::Put:
        MAD_REQUIRE(!req.name.empty(), "Put: empty key name");
        MAD_REQUIRE(req.cts.size() == 1, "Put: expected exactly 1 ciphertext");
        session.put(req.name, req.cts[0]);
        break;

    case Op::Get: {
        MAD_REQUIRE(!req.name.empty(), "Get: empty key name");
        std::optional<Ciphertext> stored = session.get(req.name);
        MAD_REQUIRE(stored.has_value(),
                    "Get: nothing stored under '" + req.name + "'");
        resp.cts.push_back(std::move(*stored));
        break;
    }

    case Op::Encrypt: {
        MAD_REQUIRE(req.values.size() <= ctx->slots(),
                    "Encrypt: more values than slots");
        resp.cts.push_back(
            backend_->encryptReal(session.publicKey(), req.values,
                                  encryptionSeedFor(req.tenant, req.id)));
        break;
    }

    case Op::EvalAdd: {
        if (!req.name.empty()) {
            MAD_REQUIRE(req.cts.size() == 1,
                        "EvalAdd with a stored operand takes 1 ciphertext");
            std::optional<Ciphertext> stored = session.get(req.name);
            MAD_REQUIRE(stored.has_value(),
                        "EvalAdd: nothing stored under '" + req.name + "'");
            resp.cts.push_back(backend_->addAligned(*stored, req.cts[0]));
        } else {
            MAD_REQUIRE(req.cts.size() == 2,
                        "EvalAdd: expected 2 ciphertexts");
            resp.cts.push_back(backend_->addAligned(req.cts[0], req.cts[1]));
        }
        break;
    }

    case Op::EvalMul:
        MAD_REQUIRE(req.cts.size() == 2, "EvalMul: expected 2 ciphertexts");
        resp.cts.push_back(
            backend_->mul(req.cts[0], req.cts[1], session.relinKey()));
        break;

    case Op::Rotate: {
        MAD_REQUIRE(req.cts.size() == 1, "Rotate: expected 1 ciphertext");
        MAD_REQUIRE(!req.steps.empty(), "Rotate: no steps given");
        if (req.steps.size() == 1) {
            resp.cts.push_back(
                req.steps[0] == 0
                    ? req.cts[0]
                    : backend_->rotate(req.cts[0], req.steps[0],
                                       session.galoisKeys()));
        } else {
            resp.cts = backend_->rotateHoisted(req.cts[0], req.steps,
                                               session.galoisKeys());
        }
        break;
    }

    case Op::MatVec: {
        MAD_REQUIRE(req.cts.size() == 1, "MatVec: expected 1 ciphertext");
        const LinearTransform* t = nullptr;
        {
            // Map nodes are stable; apply() runs outside the lock so
            // MatVec batch items can fan out across the pool.
            std::lock_guard<std::mutex> lock(transforms_mu);
            auto it = transforms.find(req.name);
            MAD_REQUIRE(it != transforms.end(),
                        "MatVec: unknown transform '" + req.name + "'");
            t = &it->second;
        }
        resp.cts.push_back(
            backend_->matVec(*t, req.cts[0], session.galoisKeys()));
        break;
    }

    case Op::DecryptShare: {
        MAD_REQUIRE(req.cts.size() == 1,
                    "DecryptShare: expected 1 ciphertext");
        MAD_REQUIRE(session.secretKey().has_value(),
                    "DecryptShare: tenant registered no demo secret key");
        resp.values =
            backend_->decryptReal(*session.secretKey(), req.cts[0]);
        break;
    }

    case Op::Bootstrap:
        MAD_REQUIRE(req.cts.size() == 1, "Bootstrap: expected 1 ciphertext");
        resp.cts.push_back(backend_->bootstrap(req.cts[0]));
        break;
    }
    resp.ok = true;
    return resp;
}

} // namespace serve
} // namespace madfhe
