#include "serve/tcp.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace madfhe {
namespace serve {

namespace {

/** Ceiling on one frame; a hostile length prefix must not allocate. */
constexpr u64 kMaxFrameBytes = 256ULL << 20;

bool
readAll(int fd, void* buf, size_t len)
{
    u8* p = static_cast<u8*>(buf);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, const void* buf, size_t len)
{
    const u8* p = static_cast<const u8*>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
sendFrame(int fd, const std::string& frame)
{
    const u64 len = frame.size();
    return writeAll(fd, &len, sizeof(len)) &&
           writeAll(fd, frame.data(), frame.size());
}

/** Returns false on clean EOF / peer reset; throws on a hostile prefix. */
bool
recvFrame(int fd, std::string& frame)
{
    u64 len = 0;
    if (!readAll(fd, &len, sizeof(len)))
        return false;
    MAD_REQUIRE(len <= kMaxFrameBytes, "tcp: implausible frame length");
    frame.resize(len);
    return len == 0 || readAll(fd, frame.data(), len);
}

} // namespace

TcpFrontEnd::TcpFrontEnd(Server& server_, std::uint16_t port)
    : server(server_)
{
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MAD_CHECK(listen_fd >= 0, "tcp: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    MAD_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "tcp: bind() failed");
    MAD_CHECK(::listen(listen_fd, 16) == 0, "tcp: listen() failed");

    socklen_t addr_len = sizeof(addr);
    MAD_CHECK(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &addr_len) == 0,
              "tcp: getsockname() failed");
    port_ = ntohs(addr.sin_port);

    acceptor = std::thread([this] { acceptLoop(); });
}

TcpFrontEnd::~TcpFrontEnd()
{
    stop();
}

void
TcpFrontEnd::stop()
{
    bool expected = false;
    if (stopping.compare_exchange_strong(expected, true)) {
        // shutdown() unblocks accept(); the fds unblock the readers.
        ::shutdown(listen_fd, SHUT_RDWR);
        ::close(listen_fd);
        std::lock_guard<std::mutex> lock(conns_mu);
        for (int fd : conn_fds)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor.joinable())
        acceptor.join();
    std::vector<std::thread> joinable;
    {
        std::lock_guard<std::mutex> lock(conns_mu);
        joinable.swap(conn_threads);
    }
    for (std::thread& t : joinable)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(conns_mu);
        for (int fd : conn_fds)
            ::close(fd);
        conn_fds.clear();
    }
}

void
TcpFrontEnd::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return; // listener closed by stop()
        std::lock_guard<std::mutex> lock(conns_mu);
        if (stopping.load()) {
            ::close(fd);
            return;
        }
        conn_fds.push_back(fd);
        conn_threads.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
TcpFrontEnd::serveConnection(int fd)
{
    std::string frame;
    for (;;) {
        try {
            if (!recvFrame(fd, frame))
                return;
        } catch (...) {
            return; // hostile length prefix: drop the connection
        }
        std::string reply;
        try {
            reply = encodeResponse(server.submitFrame(frame).get());
        } catch (...) {
            // submit rejected (server stopping): report, then drop.
            Response resp;
            resp.ok = false;
            resp.error_kind = ErrorKind::User;
            resp.error = "server is stopping";
            sendFrame(fd, encodeResponse(resp));
            return;
        }
        if (!sendFrame(fd, reply))
            return;
    }
}

std::string
tcpRequest(const std::string& host, std::uint16_t port, const std::string& frame)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MAD_CHECK(fd >= 0, "tcp: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    MAD_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "tcp: bad host address '" + host + "'");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw UserError("tcp: connect to " + host + " failed");
    }
    std::string reply;
    const bool ok = sendFrame(fd, frame) && recvFrame(fd, reply);
    ::close(fd);
    MAD_CHECK(ok, "tcp: request round-trip failed");
    return reply;
}

} // namespace serve
} // namespace madfhe
