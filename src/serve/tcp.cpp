#include "serve/tcp.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "support/env.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace serve {

namespace {

/** Ceiling on one frame; a hostile length prefix must not allocate. */
constexpr u64 kMaxFrameBytes = 256ULL << 20;

/** Bound on consecutive EINTR wakeups per buffer: a signal storm must
 *  not turn a blocking read into an unbounded spin. */
constexpr int kMaxEintrRetries = 4096;

enum class IoResult
{
    Ok,      ///< full buffer transferred
    Eof,     ///< clean close before the first byte
    Timeout, ///< SO_RCVTIMEO fired before the first byte (idle)
    Error,   ///< reset, mid-buffer EOF/stall, or EINTR storm
};

IoResult
readAll(int fd, void* buf, size_t len)
{
    u8* p = static_cast<u8*>(buf);
    size_t got = 0;
    int eintr = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n > 0) {
            got += static_cast<size_t>(n);
            eintr = 0;
            continue;
        }
        if (n == 0)
            return got == 0 ? IoResult::Eof : IoResult::Error;
        if (errno == EINTR) {
            if (++eintr > kMaxEintrRetries)
                return IoResult::Error;
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return got == 0 ? IoResult::Timeout : IoResult::Error;
        return IoResult::Error;
    }
    return IoResult::Ok;
}

bool
writeAll(int fd, const void* buf, size_t len)
{
    const u8* p = static_cast<const u8*>(buf);
    size_t sent = 0;
    int eintr = 0;
    while (sent < len) {
        const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            eintr = 0;
            continue;
        }
        if (n < 0 && errno == EINTR) {
            if (++eintr > kMaxEintrRetries)
                return false;
            continue;
        }
        // A send timeout mid-frame is unrecoverable at frame
        // granularity: the peer has a partial message.
        return false;
    }
    return true;
}

bool
sendFrame(int fd, const std::string& frame)
{
    const u64 len = frame.size();
    return writeAll(fd, &len, sizeof(len)) &&
           writeAll(fd, frame.data(), frame.size());
}

/**
 * Receive one frame. When `stopping` is given, an *idle* receive
 * timeout (no byte of the length prefix yet) re-checks it and keeps
 * waiting — a quiet client is not an error; without it (client path)
 * any timeout fails. A timeout, stall, or EOF mid-frame always fails:
 * the stream is desynchronized. Throws on a hostile length prefix —
 * the bounds check runs before any allocation.
 */
bool
recvFrame(int fd, std::string& frame,
          const std::atomic<bool>* stopping = nullptr)
{
    u64 len = 0;
    for (;;) {
        const IoResult r = readAll(fd, &len, sizeof(len));
        if (r == IoResult::Ok)
            break;
        if (r == IoResult::Timeout && stopping != nullptr &&
            !stopping->load())
            continue;
        return false;
    }
    MAD_REQUIRE(len <= kMaxFrameBytes, "tcp: implausible frame length");
    frame.resize(len);
    if (len == 0)
        return true;
    if (readAll(fd, frame.data(), len) != IoResult::Ok) {
        TELEM_COUNT("serve.tcp.midframe_drops", 1);
        return false;
    }
    return true;
}

/** Arm per-syscall send/receive timeouts from MADFHE_TCP_TIMEOUT_MS
 *  (0 / unset = block forever, the historical behavior). */
void
applySocketTimeouts(int fd)
{
    const u64 ms = env::u64Or("MADFHE_TCP_TIMEOUT_MS", 0);
    if (ms == 0)
        return;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

} // namespace

TcpFrontEnd::TcpFrontEnd(Server& server_, std::uint16_t port)
    : server(server_)
{
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MAD_CHECK(listen_fd >= 0, "tcp: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    MAD_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "tcp: bind() failed");
    MAD_CHECK(::listen(listen_fd, 16) == 0, "tcp: listen() failed");

    socklen_t addr_len = sizeof(addr);
    MAD_CHECK(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &addr_len) == 0,
              "tcp: getsockname() failed");
    port_ = ntohs(addr.sin_port);

    acceptor = std::thread([this] { acceptLoop(); });
}

TcpFrontEnd::~TcpFrontEnd()
{
    stop();
}

void
TcpFrontEnd::stop()
{
    bool expected = false;
    if (stopping.compare_exchange_strong(expected, true)) {
        // shutdown() unblocks accept(); the fds unblock the readers.
        ::shutdown(listen_fd, SHUT_RDWR);
        ::close(listen_fd);
        std::lock_guard<std::mutex> lock(conns_mu);
        for (const std::unique_ptr<Conn>& c : conns)
            if (c->fd >= 0)
                ::shutdown(c->fd, SHUT_RDWR);
    }
    if (acceptor.joinable())
        acceptor.join();
    // Handlers observe the shutdown, close their own fds and finish;
    // all that is left here is joining them.
    std::vector<std::unique_ptr<Conn>> doomed;
    {
        std::lock_guard<std::mutex> lock(conns_mu);
        doomed.swap(conns);
    }
    for (std::unique_ptr<Conn>& c : doomed)
        if (c->thread.joinable())
            c->thread.join();
}

size_t
TcpFrontEnd::liveConnections() const
{
    std::lock_guard<std::mutex> lock(conns_mu);
    size_t live = 0;
    for (const std::unique_ptr<Conn>& c : conns)
        if (!c->done.load())
            ++live;
    return live;
}

void
TcpFrontEnd::reapFinishedLocked()
{
    for (auto it = conns.begin(); it != conns.end();) {
        if ((*it)->done.load()) {
            (*it)->thread.join();
            it = conns.erase(it);
        } else {
            ++it;
        }
    }
}

void
TcpFrontEnd::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR && !stopping.load())
                continue;
            return; // listener closed by stop()
        }
        applySocketTimeouts(fd);
        std::lock_guard<std::mutex> lock(conns_mu);
        if (stopping.load()) {
            ::close(fd);
            return;
        }
        reapFinishedLocked();
        conns.push_back(std::make_unique<Conn>());
        Conn* conn = conns.back().get();
        conn->fd = fd;
        TELEM_COUNT("serve.tcp.accepts", 1);
        conn->thread = std::thread([this, conn] { serveConnection(conn); });
    }
}

void
TcpFrontEnd::serveConnection(Conn* conn)
{
    const int fd = conn->fd;
    std::string frame;
    for (;;) {
        bool got = false;
        try {
            got = recvFrame(fd, frame, &stopping);
        } catch (...) {
            // Hostile framing (oversized length prefix, truncated
            // header). Report the typed error — CorruptStream with its
            // breadcrumbs intact, not a silent drop — then close; the
            // stream position is unrecoverable.
            const auto [kind, what] = classifyCurrentException();
            TELEM_COUNT("serve.tcp.recv_errors", 1);
            Response resp;
            resp.ok = false;
            resp.error_kind = kind;
            resp.error = what;
            sendFrame(fd, encodeResponse(resp)); // best effort
            break;
        }
        if (!got)
            break;
        std::string reply;
        try {
            reply = encodeResponse(server.submitFrame(frame).get());
        } catch (...) {
            // Mid-dispatch throw (batcher closed on stop, queue-full
            // shed racing admission, a fault escaping the dispatcher):
            // the client still gets the real MadError kind and message
            // before the connection drops.
            const auto [kind, what] = classifyCurrentException();
            TELEM_COUNT("serve.tcp.submit_errors", 1);
            Response resp;
            resp.ok = false;
            resp.error_kind = kind;
            resp.error = what;
            sendFrame(fd, encodeResponse(resp)); // best effort
            break;
        }
        if (!sendFrame(fd, reply))
            break;
    }
    // Close under the lock and poison the slot so stop() never calls
    // shutdown() on a recycled descriptor number.
    {
        std::lock_guard<std::mutex> lock(conns_mu);
        ::close(conn->fd);
        conn->fd = -1;
    }
    conn->done.store(true);
    TELEM_COUNT("serve.tcp.closes", 1);
}

std::string
tcpRequest(const std::string& host, std::uint16_t port, const std::string& frame)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MAD_CHECK(fd >= 0, "tcp: socket() failed");
    applySocketTimeouts(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    MAD_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "tcp: bad host address '" + host + "'");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw UserError("tcp: connect to " + host + " failed");
    }
    std::string reply;
    const bool ok = sendFrame(fd, frame) && recvFrame(fd, reply);
    ::close(fd);
    MAD_CHECK(ok, "tcp: request round-trip failed");
    return reply;
}

} // namespace serve
} // namespace madfhe
