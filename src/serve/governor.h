/**
 * @file
 * OverloadGovernor: the serving runtime's admission-control and
 * graceful-degradation policy.
 *
 * Two failure modes of a memory-bound FHE service meet here:
 *
 *  - *Queue overload* — requests arrive faster than batches drain. The
 *    governor bounds global and per-tenant in-flight depth; a full
 *    queue sheds the request with the earliest deadline (it is the one
 *    most likely to miss anyway) as a typed `Overloaded` rejection the
 *    client can retry against. A per-tenant circuit breaker turns a
 *    persistently failing tenant into fast rejections instead of wasted
 *    evaluator passes, half-opening on a cooldown.
 *
 *  - *Memory pressure* — the key-cache working set exceeds its byte
 *    budget (overcommit: every resident key is pinned and the budget is
 *    still blown). Instead of failing, the governor steps a degrade
 *    level down: L1 caps the stream policy at `cache` and halves the
 *    batch cap (fewer keys pinned per pass); L2 caps at `fuse` (the
 *    O(1)-limb schedule — minimum pinned working set), drops the batch
 *    cap to a quarter, and proactively evicts every unleased switching
 *    key. Pressure-free batches step back up. Every transition is a
 *    telemetry event (`serve.degrade.*`, gauge `serve.degrade_level`).
 *
 * Both policies are deterministic functions of the observed event
 * sequence, so the fault campaign can drive them through repeatable
 * schedules.
 */
#ifndef MADFHE_SERVE_GOVERNOR_H
#define MADFHE_SERVE_GOVERNOR_H

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "ckks/stream.h"
#include "serve/keycache.h"
#include "serve/request.h"
#include "support/resilience.h"

namespace madfhe {
namespace serve {

struct GovernorOptions
{
    /** Global in-flight request cap; 0 = unlimited.
     *  Env: MADFHE_QUEUE_DEPTH. */
    size_t queue_depth = 0;
    /** Per-tenant in-flight cap; 0 = unlimited.
     *  Env: MADFHE_TENANT_QUEUE_DEPTH. */
    size_t tenant_queue_depth = 0;
    /** Consecutive non-user failures before a tenant's breaker opens;
     *  0 = breaker disabled. Env: MADFHE_BREAKER. */
    u32 breaker_threshold = 0;
    /** Open-state cooldown before a half-open probe.
     *  Env: MADFHE_BREAKER_COOLDOWN_MS (default 100). */
    u64 breaker_cooldown_ms = 100;
    /** Memory-pressure degradation on/off (default on). */
    bool degrade = true;
    /** Pressure-free batches required per step back up. */
    u32 restore_after = 4;

    /** Read every knob with its MADFHE_* fallback applied. */
    static GovernorOptions fromEnv();
};

class OverloadGovernor
{
  public:
    explicit OverloadGovernor(GovernorOptions options);

    struct Rejection
    {
        ErrorKind kind = ErrorKind::Overloaded;
        std::string message;
    };

    // --- admission --------------------------------------------------------

    /**
     * Breaker + per-tenant depth check, and — on admission — the
     * in-flight slot reservation, all under one lock, so the depth caps
     * are hard bounds however many submits race. nullopt admits and
     * MUST be paired with exactly one onFinish (that releases the
     * slot), even if the caller then rejects the request itself.
     * `global_full` reports that the global queue was already at
     * MADFHE_QUEUE_DEPTH: the caller should shed the oldest-deadline
     * queued request, or release this admission if nothing is sheddable.
     */
    std::optional<Rejection> admit(u64 tenant, u64 now_ns,
                                   bool& global_full);

    /** Release one admitted slot and feed the breaker. `executed` is
     *  false for shed/expired requests that never ran — those outcomes
     *  must not move the tenant's breaker, except to hand back a
     *  half-open probe slot the request was holding. */
    void onFinish(u64 tenant, bool ok, ErrorKind kind, bool executed,
                  u64 now_ns);
    /** Drop a tenant's breaker/depth state with its session. */
    void forgetTenant(u64 tenant);

    size_t inflight() const
    {
        return inflight_global.load(std::memory_order_relaxed);
    }
    u64 breakerTrips(u64 tenant) const;

    // --- graceful degradation ---------------------------------------------

    /**
     * Dispatcher hook, called once per executed batch with the key
     * cache. New overcommits since the last call step the level down
     * (and proactively evict unleased keys); `restore_after` clean
     * calls step it back up.
     */
    void observeCachePressure(KeyCache& cache);

    int degradeLevel() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /** Stream policy cap at the current level: L0 passes `ambient`
     *  through, L1 caps at Cache, L2 at Fuse. */
    StreamPolicy cappedPolicy(StreamPolicy ambient) const;

    /** Batch cap at the current level: base, base/2, base/4 (>= 1). */
    size_t cappedBatchMax(size_t base) const;

    const GovernorOptions& options() const { return opts; }

  private:
    void setLevel(int next);

    GovernorOptions opts;

    std::atomic<size_t> inflight_global{0};

    mutable std::mutex mu;
    struct TenantState
    {
        size_t inflight = 0;
        resilience::CircuitBreaker breaker;
        explicit TenantState(resilience::CircuitBreaker::Config cfg)
            : breaker(cfg)
        {
        }
    };
    std::unordered_map<u64, TenantState> tenants;
    TenantState& tenantState(u64 tenant); ///< caller holds mu

    std::atomic<int> level_{0};
    u64 last_overcommits = 0; ///< guarded by pressure_mu
    u32 healthy_streak = 0;   ///< guarded by pressure_mu
    std::mutex pressure_mu;
};

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_GOVERNOR_H
