#include "serve/request.h"

#include <cstring>
#include <sstream>

#include "ckks/serialize.h"
#include "support/faultinject.h"
#include "support/resilience.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace serve {

std::pair<ErrorKind, std::string>
classifyCurrentException()
{
    // Order matters: most-derived first (CorruptStreamError is a
    // UserError; InjectedFault is a runtime_error).
    try {
        throw;
    } catch (const faultinject::InjectedFault& e) {
        return {ErrorKind::Injected, e.what()};
    } catch (const resilience::OverloadedError& e) {
        return {ErrorKind::Overloaded, e.what()};
    } catch (const resilience::DeadlineExceededError& e) {
        return {ErrorKind::DeadlineExceeded, e.what()};
    } catch (const FaultDetectedError& e) {
        return {ErrorKind::FaultDetected, e.what()};
    } catch (const CorruptStreamError& e) {
        return {ErrorKind::CorruptStream, e.what()};
    } catch (const UserError& e) {
        return {ErrorKind::User, e.what()};
    } catch (const InvariantError& e) {
        // A broken internal invariant has no dedicated wire kind; keep
        // the breadcrumbed what() on the Other kind and count it so a
        // rate of invariant escapes is visible in telemetry.
        TELEM_COUNT("serve.errors.invariant", 1);
        return {ErrorKind::Other, e.what()};
    } catch (const std::bad_alloc&) {
        return {ErrorKind::BadAlloc, "out of memory"};
    } catch (const std::exception& e) {
        return {ErrorKind::Other, e.what()};
    } catch (...) {
        TELEM_COUNT("serve.errors.unclassified", 1);
        return {ErrorKind::Other, "unknown error"};
    }
}

const char*
opName(Op op)
{
    switch (op) {
    case Op::Put:
        return "Put";
    case Op::Get:
        return "Get";
    case Op::Encrypt:
        return "Encrypt";
    case Op::EvalAdd:
        return "EvalAdd";
    case Op::EvalMul:
        return "EvalMul";
    case Op::Rotate:
        return "Rotate";
    case Op::MatVec:
        return "MatVec";
    case Op::DecryptShare:
        return "DecryptShare";
    case Op::Bootstrap:
        return "Bootstrap";
    }
    return "?";
}

void
throwIfError(const Response& resp)
{
    if (resp.ok)
        return;
    switch (resp.error_kind) {
    case ErrorKind::CorruptStream:
        throw CorruptStreamError(resp.error);
    case ErrorKind::FaultDetected:
        throw FaultDetectedError(resp.error);
    case ErrorKind::Injected:
        throw faultinject::InjectedFault(resp.error);
    case ErrorKind::BadAlloc:
        throw std::bad_alloc();
    case ErrorKind::Overloaded:
        throw resilience::OverloadedError(resp.error);
    case ErrorKind::DeadlineExceeded:
        throw resilience::DeadlineExceededError(resp.error);
    case ErrorKind::None:
    case ErrorKind::User:
    case ErrorKind::Other:
        break;
    }
    throw UserError(resp.error);
}

bool
transientErrorKind(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::CorruptStream:
    case ErrorKind::FaultDetected:
    case ErrorKind::Injected:
    case ErrorKind::BadAlloc:
    case ErrorKind::Overloaded:
        return true;
    case ErrorKind::None:
    case ErrorKind::User:
    case ErrorKind::Other:
    case ErrorKind::DeadlineExceeded:
        return false;
    }
    return false;
}

namespace {

// v2 frames carry the request deadline field; the magic bump makes a
// v1 peer fail with "bad magic" instead of misparsing the new layout.
constexpr u64 kRequestMagic = 0x4d41445352565132ULL;  // "MADSRVQ2"
constexpr u64 kResponseMagic = 0x4d41445352565032ULL; // "MADSRVP2"

constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
constexpr u64 kFnvPrime = 0x100000001b3ULL;

constexpr size_t kMaxNameLen = 4096;
constexpr size_t kMaxErrLen = 1 << 16;
constexpr size_t kMaxSteps = 1024;
constexpr size_t kMaxCiphertexts = 64;

faultinject::Site g_decode_site("serve.decode", faultinject::kStreamKinds);

#define FRAME_CHECK(cond, msg)                                                \
    do {                                                                      \
        if (!(cond))                                                          \
            throw ::madfhe::CorruptStreamError((msg), __FILE__, __LINE__);    \
    } while (0)

/** Checksumming frame writer (header portion of a serve frame). */
class FrameWriter
{
  public:
    void
    bytes(const void* p, size_t len)
    {
        const u8* src = static_cast<const u8*>(p);
        for (size_t i = 0; i < len; ++i) {
            csum ^= src[i];
            csum *= kFnvPrime;
        }
        out.append(reinterpret_cast<const char*>(src), len);
    }

    void u64v(u64 v) { bytes(&v, sizeof(v)); }
    void dbl(double v) { bytes(&v, sizeof(v)); }

    void
    str(const std::string& s)
    {
        u64v(s.size());
        bytes(s.data(), s.size());
    }

    void
    checkpoint()
    {
        out.append(reinterpret_cast<const char*>(&csum), sizeof(csum));
    }

    std::string out;

  private:
    u64 csum = kFnvOffset;
};

/** Checksum-verifying frame reader with serve.decode fault injection. */
class FrameReader
{
  public:
    explicit FrameReader(const std::string& frame) : data(frame)
    {
        faultinject::initFromEnvOnce();
    }

    void
    bytes(void* p, size_t len)
    {
        FRAME_CHECK(!injected_eof && pos + len <= data.size(),
                    "truncated request frame");
        std::memcpy(p, data.data() + pos, len);
        pos += len;
        if (len > 0) { // zero-length chunks have no bytes to fault
            auto t = faultinject::touchStream(g_decode_site, len);
            if (t.action == faultinject::StreamTouch::Action::Truncate)
                injected_eof = true;
            else if (t.action == faultinject::StreamTouch::Action::Corrupt)
                static_cast<u8*>(p)[t.offset % len] ^= t.bit;
        }
        const u8* src = static_cast<const u8*>(p);
        for (size_t i = 0; i < len; ++i) {
            csum ^= src[i];
            csum *= kFnvPrime;
        }
    }

    u64
    u64v()
    {
        u64 v = 0;
        bytes(&v, sizeof(v));
        return v;
    }

    double
    dbl()
    {
        double v = 0;
        bytes(&v, sizeof(v));
        return v;
    }

    std::string
    str(size_t max_len, const char* what)
    {
        const u64 len = u64v();
        FRAME_CHECK(len <= max_len, std::string("implausible ") + what +
                                        " length in request frame");
        std::string s(len, '\0');
        bytes(s.data(), len);
        return s;
    }

    void
    checkpoint(const char* what)
    {
        u64 stored = 0;
        FRAME_CHECK(!injected_eof && pos + sizeof(stored) <= data.size(),
                    "truncated request frame");
        std::memcpy(&stored, data.data() + pos, sizeof(stored));
        pos += sizeof(stored);
        FRAME_CHECK(stored == csum,
                    std::string("checksum mismatch in ") + what +
                        " frame header; frame is corrupted");
    }

    /** Remaining bytes, for the payload blobs. */
    std::string
    rest() const
    {
        return data.substr(pos);
    }

  private:
    const std::string& data;
    size_t pos = 0;
    u64 csum = kFnvOffset;
    bool injected_eof = false;
};

} // namespace

std::string
encodeRequest(const Request& req)
{
    FrameWriter w;
    w.u64v(kRequestMagic);
    w.u64v(req.tenant);
    w.u64v(req.id);
    w.u64v(req.deadline_ms);
    w.u64v(static_cast<u64>(req.op));
    w.str(req.name);
    w.u64v(req.steps.size());
    for (int s : req.steps)
        w.u64v(static_cast<u64>(static_cast<i64>(s)));
    w.u64v(req.values.size());
    for (double v : req.values)
        w.dbl(v);
    w.u64v(req.cts.size());
    w.checkpoint();
    std::ostringstream payload;
    for (const Ciphertext& ct : req.cts)
        saveCiphertext(payload, ct);
    return w.out + payload.str();
}

Request
decodeRequest(const std::string& frame,
              std::shared_ptr<const RingContext> ring)
{
    FrameReader r(frame);
    FRAME_CHECK(r.u64v() == kRequestMagic,
                "not a serve request frame (bad magic)");
    Request req;
    req.tenant = r.u64v();
    req.id = r.u64v();
    req.deadline_ms = r.u64v();
    const u64 op = r.u64v();
    FRAME_CHECK(op <= static_cast<u64>(Op::Bootstrap),
                "unknown op in request frame");
    req.op = static_cast<Op>(op);
    req.name = r.str(kMaxNameLen, "name");
    const u64 nsteps = r.u64v();
    FRAME_CHECK(nsteps <= kMaxSteps, "implausible step count");
    req.steps.reserve(nsteps);
    for (u64 i = 0; i < nsteps; ++i)
        req.steps.push_back(static_cast<int>(static_cast<i64>(r.u64v())));
    const u64 nvalues = r.u64v();
    FRAME_CHECK(nvalues <= ring->degree(), "implausible value count");
    req.values.reserve(nvalues);
    for (u64 i = 0; i < nvalues; ++i)
        req.values.push_back(r.dbl());
    const u64 ncts = r.u64v();
    FRAME_CHECK(ncts <= kMaxCiphertexts, "implausible ciphertext count");
    r.checkpoint("request");
    std::istringstream payload(r.rest());
    req.cts.reserve(ncts);
    for (u64 i = 0; i < ncts; ++i)
        req.cts.push_back(loadCiphertext(payload, ring));
    return req;
}

std::string
encodeResponse(const Response& resp)
{
    FrameWriter w;
    w.u64v(kResponseMagic);
    w.u64v(resp.id);
    w.u64v(resp.ok ? 1 : 0);
    w.u64v(static_cast<u64>(resp.error_kind));
    w.str(resp.error);
    w.u64v(resp.values.size());
    for (double v : resp.values)
        w.dbl(v);
    w.u64v(resp.cts.size());
    w.checkpoint();
    std::ostringstream payload;
    for (const Ciphertext& ct : resp.cts)
        saveCiphertext(payload, ct);
    return w.out + payload.str();
}

Response
decodeResponse(const std::string& frame,
               std::shared_ptr<const RingContext> ring)
{
    FrameReader r(frame);
    FRAME_CHECK(r.u64v() == kResponseMagic,
                "not a serve response frame (bad magic)");
    Response resp;
    resp.id = r.u64v();
    resp.ok = r.u64v() != 0;
    const u64 kind = r.u64v();
    FRAME_CHECK(kind <= static_cast<u64>(ErrorKind::DeadlineExceeded),
                "unknown error kind in response frame");
    resp.error_kind = static_cast<ErrorKind>(kind);
    resp.error = r.str(kMaxErrLen, "error");
    const u64 nvalues = r.u64v();
    FRAME_CHECK(nvalues <= ring->degree(), "implausible value count");
    resp.values.reserve(nvalues);
    for (u64 i = 0; i < nvalues; ++i)
        resp.values.push_back(r.dbl());
    const u64 ncts = r.u64v();
    FRAME_CHECK(ncts <= kMaxCiphertexts, "implausible ciphertext count");
    r.checkpoint("response");
    std::istringstream payload(r.rest());
    resp.cts.reserve(ncts);
    for (u64 i = 0; i < ncts; ++i)
        resp.cts.push_back(loadCiphertext(payload, ring));
    return resp;
}

} // namespace serve
} // namespace madfhe
