/**
 * @file
 * Minimal TCP front end for the serving runtime: length-prefixed serve
 * frames over a localhost socket, one connection per client.
 *
 * Wire protocol: each message is a little-endian u64 byte count followed
 * by that many bytes of serve frame (request.h framing — magic, header
 * checksum checkpoint, serialized-v2 ciphertext payloads). The front end
 * decodes through Server::submitFrame, so a corrupted frame comes back
 * as a typed error response instead of killing the connection, and a
 * hostile length prefix is rejected before allocation.
 *
 * Robustness (see DESIGN.md "Robustness model"): all socket I/O
 * tolerates partial reads/writes and bounded EINTR storms;
 * MADFHE_TCP_TIMEOUT_MS arms SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer
 * cannot wedge a connection thread — a timeout while *idle* (no frame
 * in progress) just re-checks for shutdown, a timeout or disconnect
 * *mid-frame* drops the connection. Each connection owns its fd and
 * closes it when the session ends (under the connection lock, so stop()
 * can never shut down a recycled descriptor), finished handler threads
 * are reaped by the acceptor, and liveConnections() exposes the leak
 * check the chaos tests assert on.
 *
 * This is deliberately small — enough to demo and test real
 * client/server traffic (examples/encrypted_kv.cpp) without pulling in
 * an RPC dependency; production deployments would put their own
 * transport in front of Server::submit.
 */
#ifndef MADFHE_SERVE_TCP_H
#define MADFHE_SERVE_TCP_H

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/server.h"

namespace madfhe {
namespace serve {

class TcpFrontEnd
{
  public:
    /** Listen on 127.0.0.1:`port` (0 = ephemeral; see port()). */
    explicit TcpFrontEnd(Server& server, std::uint16_t port = 0);
    ~TcpFrontEnd();

    TcpFrontEnd(const TcpFrontEnd&) = delete;
    TcpFrontEnd& operator=(const TcpFrontEnd&) = delete;

    /** The bound port (useful with port 0). */
    std::uint16_t port() const { return port_; }

    /** Close the listener and every live connection, join all threads.
     *  Called by the destructor. */
    void stop();

    /** Connections whose handler is still running — 0 after every
     *  client has disconnected (leak assertion for tests). */
    size_t liveConnections() const;

  private:
    struct Conn
    {
        int fd = -1; ///< guarded by conns_mu; -1 once the handler closed it
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConnection(Conn* conn);
    void reapFinishedLocked(); ///< caller holds conns_mu

    Server& server;
    std::uint16_t port_ = 0;
    int listen_fd = -1;
    std::atomic<bool> stopping{false};
    std::thread acceptor;
    mutable std::mutex conns_mu;
    std::vector<std::unique_ptr<Conn>> conns;
};

/**
 * Blocking client helper: connect, send one length-prefixed `frame`,
 * return the length-prefixed response frame's payload. Honors
 * MADFHE_TCP_TIMEOUT_MS as a per-syscall send/receive timeout.
 */
std::string tcpRequest(const std::string& host, std::uint16_t port,
                       const std::string& frame);

} // namespace serve
} // namespace madfhe

#endif // MADFHE_SERVE_TCP_H
