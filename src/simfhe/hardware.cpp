#include "simfhe/hardware.h"
#include <cmath>

namespace madfhe {
namespace simfhe {

HardwareDesign
HardwareDesign::gpu()
{
    HardwareDesign d;
    d.name = "GPU [Jung et al.]";
    d.modmult_count = 2250; // effective, per the MAD Table 6 row
    d.efficiency = 1.0;
    d.onchip_mb = 6;
    d.bandwidth = 900e9;
    d.published_boot_ms = 328.7;
    d.published_slots = 65536;
    d.published_logq1 = 1080;
    d.published_throughput = 409;
    return d;
}

HardwareDesign
HardwareDesign::f1()
{
    HardwareDesign d;
    d.name = "F1";
    d.modmult_count = 18432;
    d.efficiency = 0.15;
    d.onchip_mb = 64;
    d.bandwidth = 1e12;
    d.published_boot_ms = 1.3;
    d.published_slots = 1; // unpacked bootstrapping
    d.published_logq1 = 416;
    d.published_precision = 24;
    d.published_throughput = 1.5;
    return d;
}

HardwareDesign
HardwareDesign::bts()
{
    HardwareDesign d;
    d.name = "BTS";
    d.modmult_count = 8192;
    d.efficiency = 0.15;
    d.onchip_mb = 512;
    d.bandwidth = 1e12;
    d.published_boot_ms = 50.43;
    d.published_slots = 65536;
    d.published_logq1 = 1080;
    d.published_throughput = 2667;
    return d;
}

HardwareDesign
HardwareDesign::ark()
{
    HardwareDesign d;
    d.name = "ARK";
    d.modmult_count = 20480;
    d.efficiency = 0.15;
    d.onchip_mb = 512;
    d.bandwidth = 1e12;
    d.published_boot_ms = 3.9;
    d.published_slots = 32768;
    d.published_logq1 = 432;
    d.published_throughput = 6896;
    return d;
}

HardwareDesign
HardwareDesign::craterlake()
{
    HardwareDesign d;
    d.name = "CraterLake";
    d.modmult_count = 14336;
    d.efficiency = 0.15;
    d.onchip_mb = 256;
    d.bandwidth = 2.4e12;
    d.published_boot_ms = 6.33;
    d.published_slots = 65536;
    d.published_logq1 = 532;
    d.published_throughput = 10465;
    return d;
}

std::vector<HardwareDesign>
HardwareDesign::all()
{
    return {gpu(), f1(), bts(), ark(), craterlake()};
}

HardwareDesign
HardwareDesign::withCache(double mb) const
{
    HardwareDesign d = *this;
    d.onchip_mb = mb;
    return d;
}

double
computeTimeSec(const HardwareDesign& hw, const Cost& cost)
{
    return cost.ops() / (hw.modmult_count * hw.freq_hz * hw.efficiency);
}

double
memoryTimeSec(const HardwareDesign& hw, const Cost& cost)
{
    return cost.bytes() / hw.bandwidth;
}

double
runtimeSec(const HardwareDesign& hw, const Cost& cost)
{
    return std::max(computeTimeSec(hw, cost), memoryTimeSec(hw, cost));
}

bool
memoryBound(const HardwareDesign& hw, const Cost& cost)
{
    return memoryTimeSec(hw, cost) >= computeTimeSec(hw, cost);
}

double
bootstrapThroughput(const SchemeConfig& s, double runtime_sec)
{
    // Reported in the same 1e7-bit/s unit as Table 6 (e.g. the GPU row:
    // 2^16 * 1080 * 19 / 0.3287s = 4.09e9 -> "409"). Sparse bootstraps
    // only refresh bootSlots() slots of useful data.
    return static_cast<double>(s.bootSlots()) * s.logQ1() *
           static_cast<double>(s.bit_precision) / runtime_sec / 1e7;
}

} // namespace simfhe
} // namespace madfhe
