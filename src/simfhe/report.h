/**
 * @file
 * Fixed-width table formatting for the bench binaries that regenerate the
 * paper's tables and figures.
 */
#ifndef MADFHE_SIMFHE_REPORT_H
#define MADFHE_SIMFHE_REPORT_H

#include <string>
#include <vector>

namespace madfhe {
namespace simfhe {

/** A simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Render with column alignment; first column left, rest right. */
    std::string render() const;
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format helpers. */
std::string fmt(double v, int precision = 2);
std::string fmtGiga(double v, int precision = 3); ///< value / 1e9
std::string fmtPercent(double ratio, int precision = 1);

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_REPORT_H
