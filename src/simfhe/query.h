/**
 * @file
 * OpCostQuery: a per-operation cost lookup over the SimFHE CostModel,
 * keyed by the Table-2 primitive and the ciphertext's current limb
 * count. This is the query surface the virtual backend and the load
 * harness use to charge (or report) analytically-predicted cost per
 * served request: the model counts modular ops and DRAM bytes, and the
 * roofline converter turns a cost vector into modeled nanoseconds on
 * one of the Table-6 hardware designs.
 */
#ifndef MADFHE_SIMFHE_QUERY_H
#define MADFHE_SIMFHE_QUERY_H

#include "simfhe/hardware.h"
#include "simfhe/model.h"

namespace madfhe {
namespace simfhe {

/** The primitive operations a served request decomposes into. */
enum class PrimOp
{
    PtAdd = 0,
    Add = 1,
    PtMult = 2,
    Mult = 3,
    Rotate = 4,
    Conjugate = 5,
    KeySwitch = 6,
    Rescale = 7,
    ModRaise = 8,
    PtMatVecMult = 9,
    Bootstrap = 10,
};

const char* primOpName(PrimOp op);

class OpCostQuery
{
  public:
    explicit OpCostQuery(SchemeConfig scheme, CacheConfig cache = {},
                         Optimizations opts = Optimizations::all());

    const CostModel& model() const { return model_; }
    const SchemeConfig& scheme() const { return model_.scheme(); }

    /**
     * Cost of one primitive at `level` limbs. `diagonals` only matters
     * for PtMatVecMult (0 is treated as 1); level is ignored by the
     * level-free ops (ModRaise, Bootstrap).
     */
    Cost cost(PrimOp op, size_t level, size_t diagonals = 0) const;

    /**
     * Hoisted rotation batch: Decomp+ModUp once, then one automorph +
     * inner product + ModDown pair per step (Figure 5(c) accounting).
     */
    Cost rotateHoisted(size_t level, size_t steps) const;

    /** Roofline-modeled runtime of a cost vector on `hw`, in ns. */
    static double modelNs(const HardwareDesign& hw, const Cost& cost);

  private:
    CostModel model_;
};

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_QUERY_H
