/**
 * @file
 * Hardware design models for the Table 6 / Figure 6 comparisons: the five
 * accelerator platforms the paper evaluates (Jung et al. GPU, F1, BTS,
 * ARK, CraterLake), a roofline runtime estimator, and the Han-Ki
 * bootstrapping-throughput metric (Equation 3).
 *
 * Calibration note: the paper estimates compute latency from the modular
 * multiplier count at 1 GHz. Published ASIC multiplier counts are raw
 * instance counts; sustained utilization is far below 100% (the paper
 * itself cites ~40% for CraterLake). We expose an `efficiency` factor per
 * design (1.0 for the GPU's effective number, 0.15 for ASICs) and record
 * the calibration in EXPERIMENTS.md.
 */
#ifndef MADFHE_SIMFHE_HARDWARE_H
#define MADFHE_SIMFHE_HARDWARE_H

#include <string>
#include <vector>

#include "simfhe/model.h"

namespace madfhe {
namespace simfhe {

struct HardwareDesign
{
    std::string name;
    /** Modular multiplier count (Table 6 column 3). */
    double modmult_count = 0;
    double freq_hz = 1e9;
    /** Sustained fraction of peak modular throughput. */
    double efficiency = 1.0;
    /** On-chip memory of the original design (MB). */
    double onchip_mb = 0;
    /** DRAM bandwidth in bytes/s. */
    double bandwidth = 0;

    // Published reference numbers (from the respective papers, quoted in
    // Table 6) for side-by-side reporting.
    double published_boot_ms = 0;
    double published_slots = 0;
    double published_logq1 = 0;
    double published_precision = 19;
    double published_throughput = 0;

    static HardwareDesign gpu();        ///< Jung et al. [20]
    static HardwareDesign f1();         ///< Samardzic et al. [30]
    static HardwareDesign bts();        ///< Kim et al. [25]
    static HardwareDesign ark();        ///< Kim et al. [24]
    static HardwareDesign craterlake(); ///< Samardzic et al. [31]

    /** All five designs in Table 6 order. */
    static std::vector<HardwareDesign> all();

    /** Copy with a different on-chip memory size. */
    HardwareDesign withCache(double mb) const;
};

/** Compute-side latency: ops / (multipliers * freq * efficiency). */
double computeTimeSec(const HardwareDesign& hw, const Cost& cost);
/** Memory-side latency: bytes / bandwidth. */
double memoryTimeSec(const HardwareDesign& hw, const Cost& cost);
/** Roofline runtime: max of the two (compute/memory overlap). */
double runtimeSec(const HardwareDesign& hw, const Cost& cost);
/** True when the design is memory-bound for this cost vector. */
bool memoryBound(const HardwareDesign& hw, const Cost& cost);

/**
 * Bootstrapping throughput (Equation 3):
 * n * logQ1 * bit_precision / runtime.
 */
double bootstrapThroughput(const SchemeConfig& s, double runtime_sec);

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_HARDWARE_H
