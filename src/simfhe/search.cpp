#include "simfhe/search.h"
#include <cmath>

#include "support/security.h"

#include <algorithm>

namespace madfhe {
namespace simfhe {

double
maxLogQP(unsigned log_n)
{
    // 128-bit classical security, ternary secret (HE standard table in
    // support/security.h).
    return heStdMaxLogQP128(log_n);
}

std::vector<SearchResult>
searchParameters(const SearchSpace& space, const HardwareDesign& hw,
                 size_t keep_top)
{
    std::vector<SearchResult> results;
    const double budget = maxLogQP(space.log_n);
    const CacheConfig cache = CacheConfig::megabytes(hw.onchip_mb);

    for (unsigned q = space.min_limb_bits; q <= space.max_limb_bits; ++q) {
        for (size_t limbs = space.min_limbs; limbs <= space.max_limbs;
             ++limbs) {
            for (size_t dnum : space.dnums) {
                if (dnum > limbs)
                    continue;
                for (size_t iters : space.fft_iters) {
                    SchemeConfig s;
                    s.log_n = space.log_n;
                    s.limb_bits = q;
                    s.boot_limbs = limbs;
                    s.dnum = dnum;
                    s.fft_iter = iters;
                    s.bit_precision = space.bit_precision;

                    // Feasibility: depth must fit, and the total modulus
                    // (Q at L limbs + the alpha raising limbs) must stay
                    // within the security budget.
                    if (s.bootstrapDepth() + 2 >= limbs)
                        continue;
                    double log_qp = static_cast<double>(
                        (limbs + 1 + s.alpha()) * q);
                    if (log_qp > budget)
                        continue;
                    if (iters > s.log_n - 1)
                        continue;

                    CostModel model(s, cache, Optimizations::all());
                    SearchResult r;
                    r.config = s;
                    r.bootstrap_cost = model.bootstrap();
                    r.runtime_sec = runtimeSec(hw, r.bootstrap_cost);
                    r.throughput = bootstrapThroughput(s, r.runtime_sec);
                    r.memory_bound = memoryBound(hw, r.bootstrap_cost);
                    results.push_back(r);
                }
            }
        }
    }
    std::sort(results.begin(), results.end(),
              [](const SearchResult& a, const SearchResult& b) {
                  return a.throughput > b.throughput;
              });
    if (results.size() > keep_top)
        results.resize(keep_top);
    return results;
}

} // namespace simfhe
} // namespace madfhe
