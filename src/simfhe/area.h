/**
 * @file
 * First-order silicon area / cost model for the Section 4.4 discussion
 * ("Performance vs. Area/Cost Tradeoffs"): on-chip SRAM dominates the
 * die, so cutting 512 MB to 32 MB shrinks the chip — and cost scales at
 * least linearly with area (the paper: "proportionally reduces the cost
 * of the solution").
 */
#ifndef MADFHE_SIMFHE_AREA_H
#define MADFHE_SIMFHE_AREA_H

#include <cmath>

#include "simfhe/hardware.h"

namespace madfhe {
namespace simfhe {

/** 7nm-class area constants (ASAP7-flavored first-order numbers). */
struct AreaModel
{
    /** SRAM density, mm^2 per MB (including array overheads). */
    double sram_mm2_per_mb = 0.4;
    /** One pipelined 64-bit modular multiplier, mm^2. */
    double modmult_mm2 = 0.0025;
    /** Everything-else factor (NoC, NTT wiring, control, PHYs). */
    double overhead_factor = 1.35;

    /** Die area of a design point. */
    double
    chipAreaMm2(double modmult_count, double onchip_mb) const
    {
        return overhead_factor *
               (sram_mm2_per_mb * onchip_mb + modmult_mm2 * modmult_count);
    }

    /**
     * Relative manufacturing cost: die cost grows superlinearly with
     * area (yield); exponent ~1.5 is a standard first-order model.
     */
    double
    relativeCost(double area_mm2) const
    {
        return std::pow(area_mm2, 1.5);
    }
};

/** Throughput per mm^2 — the figure of merit of Section 4.4. */
double throughputPerArea(const SchemeConfig& s, const HardwareDesign& hw,
                         const Cost& bootstrap_cost,
                         const AreaModel& model = {});

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_AREA_H
