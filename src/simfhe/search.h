/**
 * @file
 * Brute-force CKKS bootstrapping parameter search (Section 4.1/4.2):
 * sweep (limb width q, chain length L, dnum, fftIter) under a security
 * budget and an on-chip-memory budget, maximizing the Equation-3
 * throughput on a given hardware design. Reproduces Table 5.
 */
#ifndef MADFHE_SIMFHE_SEARCH_H
#define MADFHE_SIMFHE_SEARCH_H

#include <vector>

#include "simfhe/hardware.h"

namespace madfhe {
namespace simfhe {

struct SearchSpace
{
    unsigned log_n = 17;
    unsigned min_limb_bits = 40, max_limb_bits = 60;
    size_t min_limbs = 24, max_limbs = 48;
    std::vector<size_t> dnums = {1, 2, 3, 4, 5, 6};
    std::vector<size_t> fft_iters = {1, 2, 3, 4, 5, 6, 7, 8};
    unsigned bit_precision = 19;
};

struct SearchResult
{
    SchemeConfig config;
    Cost bootstrap_cost;
    double runtime_sec = 0;
    double throughput = 0;
    bool memory_bound = false;
};

/**
 * Maximum total modulus bits (log QP) for 128-bit security at ring degree
 * 2^log_n, per the homomorphic encryption standard tables.
 */
double maxLogQP(unsigned log_n);

/**
 * Exhaustively search the space for the throughput-maximizing
 * configuration on `hw` with all MAD optimizations enabled.
 * Returns results sorted by descending throughput (best first).
 */
std::vector<SearchResult> searchParameters(const SearchSpace& space,
                                           const HardwareDesign& hw,
                                           size_t keep_top = 10);

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_SEARCH_H
