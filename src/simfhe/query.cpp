#include "simfhe/query.h"

#include <algorithm>

#include "support/errors.h"

namespace madfhe {
namespace simfhe {

const char*
primOpName(PrimOp op)
{
    switch (op) {
    case PrimOp::PtAdd:
        return "PtAdd";
    case PrimOp::Add:
        return "Add";
    case PrimOp::PtMult:
        return "PtMult";
    case PrimOp::Mult:
        return "Mult";
    case PrimOp::Rotate:
        return "Rotate";
    case PrimOp::Conjugate:
        return "Conjugate";
    case PrimOp::KeySwitch:
        return "KeySwitch";
    case PrimOp::Rescale:
        return "Rescale";
    case PrimOp::ModRaise:
        return "ModRaise";
    case PrimOp::PtMatVecMult:
        return "PtMatVecMult";
    case PrimOp::Bootstrap:
        return "Bootstrap";
    }
    return "unknown";
}

OpCostQuery::OpCostQuery(SchemeConfig scheme, CacheConfig cache,
                         Optimizations opts)
    : model_(scheme, cache, opts)
{
}

Cost
OpCostQuery::cost(PrimOp op, size_t level, size_t diagonals) const
{
    MAD_REQUIRE(level >= 1, "cost query needs level >= 1");
    // The model is defined for limb counts up to the raised chain; a
    // serve-layer level can never exceed the functional chain, but clamp
    // defensively so a hostile request cannot drive the model out of
    // range.
    const size_t l = std::min(level, scheme().boot_limbs + 1);
    switch (op) {
    case PrimOp::PtAdd:
        return model_.ptAdd(l);
    case PrimOp::Add:
        return model_.add(l);
    case PrimOp::PtMult:
        return model_.ptMult(l);
    case PrimOp::Mult:
        return model_.mult(l);
    case PrimOp::Rotate:
        return model_.rotate(l);
    case PrimOp::Conjugate:
        return model_.conjugate(l);
    case PrimOp::KeySwitch:
        return model_.keySwitch(l);
    case PrimOp::Rescale:
        return model_.rescale(l);
    case PrimOp::ModRaise:
        return model_.modRaise();
    case PrimOp::PtMatVecMult:
        return model_.ptMatVecMult(l, std::max<size_t>(diagonals, 1));
    case PrimOp::Bootstrap:
        return model_.bootstrap();
    }
    throw InvariantError("unhandled PrimOp in cost query", __FILE__,
                         __LINE__);
}

Cost
OpCostQuery::rotateHoisted(size_t level, size_t steps) const
{
    MAD_REQUIRE(level >= 1, "cost query needs level >= 1");
    const size_t l = std::min(level, scheme().boot_limbs + 1);
    const size_t beta = scheme().beta(l);
    Cost c = model_.decomp(l);
    for (size_t d = 0; d < beta; ++d)
        c += model_.modUpDigit(l);
    const Cost per_step =
        model_.automorph(l) + model_.kskInnerProd(l) + model_.modDownPoly(l) +
        model_.modDownPoly(l);
    for (size_t s = 0; s < std::max<size_t>(steps, 1); ++s)
        c += per_step;
    return c;
}

double
OpCostQuery::modelNs(const HardwareDesign& hw, const Cost& cost)
{
    return runtimeSec(hw, cost) * 1e9;
}

} // namespace simfhe
} // namespace madfhe
