#include "simfhe/config.h"

#include <sstream>

namespace madfhe {
namespace simfhe {

SchemeConfig
SchemeConfig::baselineJung()
{
    SchemeConfig s;
    s.log_n = 17;
    s.limb_bits = 54;
    s.boot_limbs = 35;
    s.dnum = 3;
    s.fft_iter = 3;
    s.bit_precision = 19;
    return s;
}

SchemeConfig
SchemeConfig::madOptimal()
{
    SchemeConfig s;
    s.log_n = 17;
    s.limb_bits = 50;
    s.boot_limbs = 40;
    s.dnum = 2;
    s.fft_iter = 6;
    s.bit_precision = 19;
    return s;
}

Optimizations
Optimizations::feasible(const SchemeConfig& s, const CacheConfig& c) const
{
    Optimizations o = *this;
    const size_t fit = c.limbsFit(s);
    if (fit < 1)
        o.cache_o1 = false;
    if (fit < s.dnum + 2)
        o.cache_beta = false;
    // O(alpha) needs the alpha-limb basis-change working set plus a few
    // streaming limbs resident (the paper quotes ~27 MB at alpha = 12).
    if (fit < s.alpha() + 3) {
        o.cache_alpha = false;
        o.limb_reorder = false;
    }
    return o;
}

std::string
Optimizations::describe() const
{
    std::ostringstream os;
    os << (cache_o1 ? "O1 " : "") << (cache_beta ? "Obeta " : "")
       << (cache_alpha ? "Oalpha " : "") << (limb_reorder ? "reorder " : "")
       << (moddown_merge ? "merge " : "") << (moddown_hoist ? "hoist " : "")
       << (key_compression ? "keycomp " : "");
    std::string s = os.str();
    if (s.empty())
        return "baseline";
    s.pop_back();
    return s;
}

} // namespace simfhe
} // namespace madfhe
