#include "simfhe/report.h"

#include <cstdio>
#include <sstream>

#include "support/common.h"

namespace madfhe {
namespace simfhe {

Table::Table(std::vector<std::string> headers_) : headers(std::move(headers_))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    MAD_REQUIRE(cells.size() == headers.size(), "row width mismatch");
    rows.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers.size());
    for (size_t i = 0; i < headers.size(); ++i)
        width[i] = headers[i].size();
    for (const auto& row : rows)
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i == 0) {
                os << cells[i]
                   << std::string(width[i] - cells[i].size(), ' ');
            } else {
                os << "  "
                   << std::string(width[i] - cells[i].size(), ' ')
                   << cells[i];
            }
        }
        os << "\n";
    };
    emit(headers);
    size_t total = width[0];
    for (size_t i = 1; i < width.size(); ++i)
        total += width[i] + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtGiga(double v, int precision)
{
    return fmt(v / 1e9, precision);
}

std::string
fmtPercent(double ratio, int precision)
{
    return fmt(ratio * 100.0, precision) + "%";
}

} // namespace simfhe
} // namespace madfhe
