#include "simfhe/model.h"

#include <cmath>
#include <sstream>

namespace madfhe {
namespace simfhe {

std::string
Cost::summary() const
{
    std::ostringstream os;
    os.precision(4);
    os << ops() / 1e9 << " Gops, " << bytes() / 1e9 << " GB, AI "
       << intensity();
    return os.str();
}

CostModel::CostModel(const SchemeConfig& scheme, const CacheConfig& cache,
                     const Optimizations& requested)
    : s(scheme), c(cache), opt(requested.feasible(scheme, cache))
{
}

Cost
CostModel::nttLimbs(double count) const
{
    const double n = static_cast<double>(s.n());
    const double butterflies = (n / 2.0) * s.log_n;
    Cost cost;
    cost.mul = count * (butterflies + n);
    cost.add = count * (2.0 * butterflies);
    return cost;
}

Cost
CostModel::conversion(double src, double dst) const
{
    const double n = static_cast<double>(s.n());
    Cost cost;
    cost.mul = n * src + n * dst * src;
    cost.add = n * dst * src;
    return cost;
}

Cost
CostModel::pointwise(double limbs, double mul_per_coeff,
                     double add_per_coeff) const
{
    const double n = static_cast<double>(s.n());
    Cost cost;
    cost.mul = limbs * n * mul_per_coeff;
    cost.add = limbs * n * add_per_coeff;
    return cost;
}

Cost
CostModel::ptAdd(size_t l) const
{
    Cost cost = pointwise(l, 0, 1);
    cost.ct_read = lb(l);
    cost.pt_read = lb(l);
    cost.ct_write = lb(l);
    return cost;
}

Cost
CostModel::add(size_t l) const
{
    Cost cost = pointwise(2.0 * l, 0, 1);
    cost.ct_read = lb(4.0 * l);
    cost.ct_write = lb(2.0 * l);
    return cost;
}

Cost
CostModel::rescale(size_t l) const
{
    // Per polynomial: iNTT of the top limb, then per kept limb an NTT of
    // the lifted correction fused with the subtract/scale pass. The top
    // limb stays cached, so traffic is one read per limb plus one write
    // per output limb (this matches the Table 4 PtMult total).
    const double kept = static_cast<double>(l - 1);
    Cost one = nttLimbs(1) + nttLimbs(kept) + pointwise(kept, 2, 1);
    one.ct_read = lb(l);
    one.ct_write = lb(kept);
    return one + one; // two polynomials
}

Cost
CostModel::ptMult(size_t l) const
{
    // Multiply both polynomials by the plaintext, then Rescale.
    Cost cost = pointwise(2.0 * l, 1, 0);
    cost.ct_read = lb(2.0 * l);
    cost.pt_read = lb(l);
    cost.ct_write = lb(2.0 * l);
    if (opt.cache_o1) {
        // Fuse the multiply with the first Rescale pass per limb: the
        // product limb is rescaled before being written back.
        cost.ct_write -= lb(2.0);
    }
    return cost + rescale(l);
}

Cost
CostModel::decomp(size_t l) const
{
    Cost cost = pointwise(l, 1, 1);
    cost.ct_read = lb(l);
    cost.ct_write = lb(l);
    return cost;
}

Cost
CostModel::modUpDigit(size_t l) const
{
    const double a = static_cast<double>(s.alpha());
    const double r = static_cast<double>(s.raised(l));
    const double fresh = r - a;

    Cost cost = nttLimbs(a) + conversion(a, fresh) + nttLimbs(fresh);
    if (opt.cache_alpha) {
        // The alpha source limbs stay resident: iNTT in cache, NewLimb
        // reads from cache, each new limb is NTT'd before its single
        // write (Section 3.1, O(alpha) caching).
        cost.ct_read = lb(a);
        cost.ct_write = lb(fresh);
    } else {
        cost.ct_read = lb(2 * a + fresh);
        cost.ct_write = lb(a + 2 * fresh);
    }
    return cost;
}

Cost
CostModel::kskInnerProd(size_t l) const
{
    const double r = static_cast<double>(s.raised(l));
    const double b = static_cast<double>(s.beta(l));

    Cost cost = pointwise(2.0 * r, b, b);
    cost.ct_read = lb(b * r);
    cost.ct_write = lb(2.0 * r);
    cost.key_read = keyReadBytes(l);
    return cost;
}

double
CostModel::keyReadBytes(size_t l) const
{
    const double r = static_cast<double>(s.raised(l));
    const double b = static_cast<double>(s.beta(l));
    double bytes = lb(2.0 * b * r);
    if (opt.key_compression)
        bytes *= 0.5; // the a-half is regenerated from a PRNG seed
    return bytes;
}

Cost
CostModel::modDownPoly(size_t l) const
{
    const double r = static_cast<double>(s.raised(l));
    const double drop = r - static_cast<double>(l);
    const double kept = static_cast<double>(l);

    Cost cost = nttLimbs(drop) + conversion(drop, kept) + nttLimbs(kept) +
                pointwise(kept, 2, 1);
    if (opt.cache_alpha) {
        // Dropped limbs resident: iNTT + NewLimb + NTT + combine fuse.
        cost.ct_read = lb(drop + kept);
        cost.ct_write = lb(kept);
        if (opt.limb_reorder) {
            // Dropped limbs are computed first by the producer and
            // consumed immediately (Section 3.1, re-ordering): their
            // spill from the previous stage disappears.
            cost.ct_read -= lb(drop);
        }
    } else {
        cost.ct_read = lb(2.0 * drop + 2.0 * kept);
        cost.ct_write = lb(drop + 2.0 * kept);
    }
    return cost;
}

Cost
CostModel::keySwitch(size_t l) const
{
    Cost cost = decomp(l);
    cost += modUpDigit(l) * static_cast<double>(s.beta(l));
    cost += kskInnerProd(l);
    cost += modDownPoly(l) * 2.0;
    if (opt.limb_reorder) {
        // The inner-product outputs' dropped limbs are never written:
        // they stream straight into ModDown.
        const double drop =
            static_cast<double>(s.raised(l)) - static_cast<double>(l);
        cost.ct_write -= lb(2.0 * drop);
    }
    return cost;
}

Cost
CostModel::automorph(size_t l) const
{
    Cost cost;
    cost.ct_read = lb(2.0 * l);
    cost.ct_write = lb(2.0 * l);
    return cost;
}

Cost
CostModel::rotate(size_t l) const
{
    Cost cost = automorph(l) + keySwitch(l);
    // Final c0' = sigma(c0) + u.
    Cost fin = pointwise(l, 0, 1);
    fin.ct_read = lb(2.0 * l);
    fin.ct_write = lb(l);
    cost += fin;
    if (opt.cache_o1) {
        // Fuse Automorph+Decomp+iNTT on the key-switched polynomial
        // (Figure 1) and fuse the other polynomial's Automorph into the
        // final addition.
        cost.ct_read -= lb(2.0 * l + l);
        cost.ct_write -= lb(2.0 * l + l);
    }
    return cost;
}

Cost
CostModel::mult(size_t l) const
{
    const double dl = static_cast<double>(l);

    // Tensor product: d0, d1 (two products + add), d2.
    Cost cost = pointwise(4.0 * dl, 1, 0) + pointwise(dl, 0, 1);
    cost.ct_read = lb(4.0 * dl);
    cost.ct_write = lb(3.0 * dl);
    if (opt.cache_o1) {
        // Fuse the d2 limbs straight into Decomp+iNTT (Figure 1 style):
        // d2 is never spilled and Decomp reads from cache.
        cost.ct_write -= lb(dl);
        Cost dec = pointwise(dl, 1, 1);
        dec.ct_write = lb(dl);
        cost += dec;
    } else {
        cost += decomp(l);
    }
    cost += modUpDigit(l) * static_cast<double>(s.beta(l));
    cost += kskInnerProd(l);

    if (opt.moddown_merge) {
        // Figure 4(c): PModUp lifts d0/d1 into the raised basis (one
        // multiply per coefficient), the additions happen raised, and a
        // single merged ModDown divides by P * q_top.
        cost += pointwise(2.0 * dl, 1, 1); // PModUp + raised add
        const double r = static_cast<double>(s.raised(l));
        const double kept = dl - 1.0;
        const double drop = r - kept;
        Cost md = nttLimbs(drop) + conversion(drop, kept) +
                  nttLimbs(kept) + pointwise(kept, 2, 1);
        if (opt.cache_alpha) {
            md.ct_read = lb(drop + kept);
            md.ct_write = lb(kept);
            if (opt.limb_reorder)
                md.ct_read -= lb(drop);
        } else {
            md.ct_read = lb(2.0 * drop + 2.0 * kept);
            md.ct_write = lb(drop + 2.0 * kept);
        }
        cost += md * 2.0;
        if (opt.limb_reorder)
            cost.ct_write -= lb(2.0 * drop);
    } else {
        cost += modDownPoly(l) * 2.0;
        // d0 + u, d1 + v.
        Cost fin = pointwise(2.0 * dl, 0, 1);
        fin.ct_read = lb(4.0 * dl);
        fin.ct_write = lb(2.0 * dl);
        if (opt.cache_o1) {
            // Fused into the ModDown output pass.
            fin.ct_read -= lb(2.0 * dl);
            fin.ct_write = 0;
        }
        cost += fin;
        cost += rescale(l);
    }
    return cost;
}

size_t
CostModel::dftFactorDiagonals(size_t i) const
{
    // log2(bootstrapped slots) butterfly stages split as evenly as
    // possible across fft_iter factors; a group of g stages has
    // ~2^(g+1) - 1 diagonals.
    const size_t stages = floorLog2(s.bootSlots());
    const size_t iters = s.fft_iter;
    MAD_CHECK(i < iters, "factor index out of range");
    size_t base = stages / iters;
    size_t extra = stages % iters;
    size_t g = base + (i < extra ? 1 : 0);
    return (size_t(2) << g) - 1;
}

Cost
CostModel::ptMatVecMult(size_t l, size_t diagonals) const
{
    const double dl = static_cast<double>(l);
    const double d = static_cast<double>(diagonals);
    const double r = static_cast<double>(s.raised(l));
    const double b = static_cast<double>(s.beta(l));

    // BSGS split. With ModDown hoisting the paper chooses a larger baby
    // step (more key reads, fewer ciphertext reads — Section 3.2).
    double bs = std::ceil(std::sqrt(d));
    if (opt.moddown_hoist)
        bs = std::ceil(std::sqrt(2.0 * d));
    double gs = std::ceil(d / bs);

    Cost cost;
    // Hoisted ModUp for the baby rotations (part of the baseline too).
    cost += decomp(l);
    cost += modUpDigit(l) * b;

    if (opt.moddown_hoist) {
        // Figure 5(b)+(c) with limb-major scheduling (the O(beta)
        // insight): for each limb position, the beta digit limbs are read
        // once, every baby's Automorph+KSKInnerProd runs in cache, the
        // plaintext products accumulate into per-giant raised
        // accumulators, which are written once. Giant steps key-switch
        // the raised accumulators; two ModDowns close the PtMatVecMult.
        Cost babies = pointwise(2.0 * r, b, b) * bs; // inner products
        babies.ct_read = lb(b * r);                  // digits, read once
        babies.key_read = keyReadBytes(l) * bs;
        cost += babies;
        // Raised plaintext products + accumulation (in cache). The
        // per-giant accumulator limb is consumed by the giant-step
        // key-switch as soon as it completes (limb-major fusion), so only
        // the final output accumulator is written.
        Cost pm = pointwise(2.0 * r, 1, 1) * d;
        pm.pt_read = lb(r) * d;
        cost += pm;
        // Giant steps: permute + key-switch each raised accumulator and
        // fold into the output accumulator.
        Cost giants = pointwise(2.0 * r, b, b + 1) * (gs - 1);
        giants.ct_write = lb(2.0 * r);
        giants.key_read = keyReadBytes(l) * (gs - 1);
        cost += giants;
        // Two final ModDowns + rescale.
        cost += modDownPoly(l) * 2.0;
        cost += rescale(l);
    } else {
        // Babies are completed ciphertexts (2 ModDowns each); every giant
        // step is a full Rotate.
        for (double j = 0; j < bs; ++j) {
            Cost aut; // permute the raised digits
            if (!opt.cache_o1) {
                // Without O(1) fusion the permuted digits spill before
                // the inner product consumes them.
                aut.ct_read = lb(b * r);
                aut.ct_write = lb(b * r);
            }
            cost += aut;
            cost += kskInnerProd(l);
            if (opt.cache_beta && j > 0) {
                // O(beta): the ModUp outputs are read once across all
                // rotations (Section 3.1).
                cost.ct_read -= lb(b * r);
            }
            cost += modDownPoly(l) * 2.0;
        }
        // Plaintext multiply + accumulate per diagonal. The baseline
        // (Jung et al.) already fuses the multiply with the accumulate
        // (their kernel-fusion optimizations); with O(alpha)-scale cache
        // the whole accumulation runs limb-major: each baby ciphertext
        // limb is read once for all the diagonals that use it and each
        // per-giant accumulator limb is written once.
        Cost pm = pointwise(2.0 * dl, 1, 1) * d;
        pm.pt_read = lb(dl) * d;
        if (opt.cache_alpha) {
            pm.ct_read = lb(2.0 * dl) * bs;
            pm.ct_write = lb(2.0 * dl) * gs;
        } else {
            pm.ct_read = lb(4.0 * dl) * d;
            pm.ct_write = lb(2.0 * dl) * d;
        }
        cost += pm;
        // Giant rotations + accumulate.
        for (double i = 1; i < gs; ++i) {
            cost += rotate(l);
            cost += add(l);
        }
        cost += rescale(l);
    }
    return cost;
}

Cost
CostModel::evalMod(size_t l) const
{
    // Degree-~63 scaled-sine evaluation: 9 multiplicative levels with a
    // BSGS polynomial schedule (~22 ciphertext multiplications) plus the
    // surrounding additions/plaintext ops.
    static const size_t mults_per_level[9] = {3, 3, 3, 2, 2, 2, 2, 2, 1};
    Cost cost;
    size_t level = l;
    for (size_t k = 0; k < 9; ++k) {
        MAD_CHECK(level >= 2, "evalMod ran out of levels");
        cost += mult(level) * static_cast<double>(mults_per_level[k]);
        cost += add(level);
        level -= 1;
    }
    return cost;
}

Cost
CostModel::modRaise() const
{
    // Raise both polynomials from a 2-limb ciphertext to boot_limbs.
    const double src = 2.0;
    const double dst = static_cast<double>(s.boot_limbs) - src;
    Cost one = nttLimbs(src) + conversion(src, dst) + nttLimbs(dst);
    one.ct_read = lb(src + dst);
    one.ct_write = lb(src + 2.0 * dst);
    if (opt.cache_alpha) {
        one.ct_read = lb(src);
        one.ct_write = lb(dst);
    }
    return one + one;
}

Cost
CostModel::bootstrap() const
{
    return bootstrapBreakdown().total();
}

CostModel::BootstrapBreakdown
CostModel::bootstrapBreakdown() const
{
    BootstrapBreakdown bd;
    bd.mod_raise = modRaise();
    size_t l = s.boot_limbs;

    // CoeffToSlot.
    for (size_t i = 0; i < s.fft_iter; ++i) {
        bd.coeff_to_slot += ptMatVecMult(l, dftFactorDiagonals(i));
        l -= 1;
    }
    // Conjugation split: one Conjugate plus adds.
    bd.eval_mod += conjugate(l);
    bd.eval_mod += add(l) * 2.0;

    // EvalMod on both halves shares the evaluation of the Chebyshev basis
    // (the paper's schedule): model as 1.5x one EvalMod.
    bd.eval_mod += evalMod(l) * 1.5;
    l -= s.evalModDepth();

    // Recombine.
    bd.eval_mod += add(l);

    // SlotToCoeff.
    for (size_t i = 0; i < s.fft_iter; ++i) {
        bd.slot_to_coeff += ptMatVecMult(l, dftFactorDiagonals(i));
        l -= 1;
    }
    return bd;
}

} // namespace simfhe
} // namespace madfhe
