/**
 * @file
 * SimFHE configuration: the CKKS parameter set under analysis (paper-scale
 * parameters, e.g. N = 2^17), the on-chip memory budget, and the MAD
 * optimization toggles. SimFHE is an analytical cost model — it counts
 * modular operations and DRAM transfers, it does not execute the scheme
 * (src/ckks does that, at reduced parameters).
 */
#ifndef MADFHE_SIMFHE_CONFIG_H
#define MADFHE_SIMFHE_CONFIG_H

#include <string>

#include "support/common.h"

namespace madfhe {
namespace simfhe {

/** CKKS parameters of the modeled scheme (Table 1 / Table 5). */
struct SchemeConfig
{
    /** log2 of the ring degree N. */
    unsigned log_n = 17;
    /** Limb width in bits (the paper's q). */
    unsigned limb_bits = 54;
    /** Limbs in the working modulus right after the bootstrap ModRaise
     *  (the paper's Table 5 "L"). */
    size_t boot_limbs = 35;
    /** Key-switching digit count. */
    size_t dnum = 3;
    /** PtMatVecMult iterations per DFT phase in bootstrapping. */
    size_t fft_iter = 3;
    /** Plaintext bit precision (for the Eq. 3 throughput metric). */
    unsigned bit_precision = 19;
    /**
     * Slots actually bootstrapped; 0 = fully packed (N/2). Applications
     * use sparsely packed bootstrapping (Section 4.3: "we utilize
     * bootstrapping implementation with fewer ciphertext slots"), which
     * shrinks the homomorphic DFT dimension.
     */
    size_t boot_slots = 0;

    size_t n() const { return size_t(1) << log_n; }
    size_t slots() const { return n() / 2; }
    size_t bootSlots() const { return boot_slots ? boot_slots : slots(); }
    /** Limbs per digit: alpha = ceil((L + 1) / dnum). */
    size_t alpha() const { return ceilDiv(boot_limbs + 1, dnum); }
    /** Digits spanned by an l-limb polynomial. */
    size_t beta(size_t l) const { return ceilDiv(l, alpha()); }
    /**
     * Limbs of the raised basis for an l-limb polynomial: digits are
     * padded to whole-alpha boundaries and the alpha P limbs follow.
     */
    size_t raised(size_t l) const { return beta(l) * alpha() + alpha(); }

    /** Bytes of one limb (N machine words). */
    double limbBytes() const { return static_cast<double>(n()) * 8.0; }
    /** Bytes of a full ciphertext at l limbs. */
    double ctBytes(size_t l) const { return 2.0 * l * limbBytes(); }

    /** Multiplicative depth of the EvalMod phase (degree-~63 scaled sine;
     *  constant across the designs the paper compares). */
    size_t evalModDepth() const { return 9; }
    /** Levels one bootstrap consumes. */
    size_t bootstrapDepth() const { return 2 * fft_iter + evalModDepth(); }
    /** log Q1: modulus bits remaining right after bootstrapping. */
    double
    logQ1() const
    {
        if (bootstrapDepth() >= boot_limbs)
            return 0.0;
        return static_cast<double>((boot_limbs - bootstrapDepth()) *
                                   limb_bits);
    }

    /** The Jung et al. GPU baseline parameter set (Table 5, row 1). */
    static SchemeConfig baselineJung();
    /** The paper's optimal 32 MB parameter set (Table 5, row 2). */
    static SchemeConfig madOptimal();
};

/** On-chip memory budget. */
struct CacheConfig
{
    double bytes = 32.0 * 1024 * 1024;

    static CacheConfig
    megabytes(double mb)
    {
        return CacheConfig{mb * 1024 * 1024};
    }
    double mb() const { return bytes / (1024 * 1024); }
    /** Whole limbs that fit. */
    size_t
    limbsFit(const SchemeConfig& s) const
    {
        return static_cast<size_t>(bytes / s.limbBytes());
    }
};

/** The MAD optimization toggles (Section 3). */
struct Optimizations
{
    // Caching optimizations (Section 3.1) — DRAM only.
    bool cache_o1 = false;      ///< O(1)-limb sub-operation fusion.
    bool cache_beta = false;    ///< O(beta)-limb digit caching in matvec.
    bool cache_alpha = false;   ///< O(alpha)-limb basis-change caching.
    bool limb_reorder = false;  ///< Re-ordered limb computation in ModDown.
    // Algorithmic optimizations (Section 3.2) — compute and DRAM.
    bool moddown_merge = false;   ///< Merge ModDown with Rescale in Mult.
    bool moddown_hoist = false;   ///< Hoist ModDown in PtMatVecMult.
    bool key_compression = false; ///< PRNG-seeded switching keys.

    static Optimizations none() { return {}; }
    static Optimizations
    o1()
    {
        Optimizations o;
        o.cache_o1 = true;
        return o;
    }
    static Optimizations
    upToBeta()
    {
        Optimizations o = o1();
        o.cache_beta = true;
        return o;
    }
    static Optimizations
    upToAlpha()
    {
        Optimizations o = upToBeta();
        o.cache_alpha = true;
        return o;
    }
    static Optimizations
    allCaching()
    {
        Optimizations o = upToAlpha();
        o.limb_reorder = true;
        return o;
    }
    static Optimizations
    withMerge()
    {
        Optimizations o = allCaching();
        o.moddown_merge = true;
        return o;
    }
    static Optimizations
    withHoist()
    {
        Optimizations o = withMerge();
        o.moddown_hoist = true;
        return o;
    }
    static Optimizations
    all()
    {
        Optimizations o = withHoist();
        o.key_compression = true;
        return o;
    }

    /**
     * Restrict to what the cache can support (the paper: "for a large
     * enough on-chip memory, SimFHE will automatically deploy the
     * applicable optimization"). O(1) needs ~1 limb; O(beta) needs beta+1
     * limbs; O(alpha) and re-ordering need ~2*alpha + 3 limbs.
     */
    Optimizations feasible(const SchemeConfig& s, const CacheConfig& c) const;

    std::string describe() const;
};

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_CONFIG_H
