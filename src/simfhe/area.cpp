#include "simfhe/area.h"

namespace madfhe {
namespace simfhe {

double
throughputPerArea(const SchemeConfig& s, const HardwareDesign& hw,
                  const Cost& bootstrap_cost, const AreaModel& model)
{
    double rt = runtimeSec(hw, bootstrap_cost);
    double tput = bootstrapThroughput(s, rt);
    double area = model.chipAreaMm2(hw.modmult_count, hw.onchip_mb);
    return tput / area;
}

} // namespace simfhe
} // namespace madfhe
