/**
 * @file
 * The SimFHE cost model: per-primitive compute and DRAM costs (Table 4),
 * the key-switching pipeline, PtMatVecMult schedules with the hoisting
 * options (Figure 5), and the full bootstrapping schedule (Algorithm 4)
 * under any combination of MAD optimizations (Figures 2-3).
 *
 * Cost conventions (calibrated against Table 4 of the paper):
 *  - One NTT/iNTT of a limb costs (N/2)*log2(N) butterflies, each one
 *    modular multiply and two adds, plus N twist/scale multiplies.
 *  - NewLimb from k source limbs into one target limb costs k multiplies
 *    and k adds per coefficient, plus one scale multiply per source
 *    coefficient (amortized once per conversion).
 *  - DRAM moves whole limbs (N words); every sub-operation reads its
 *    inputs from DRAM and writes its outputs back unless an enabled
 *    caching optimization fuses the producing/consuming sub-operations.
 */
#ifndef MADFHE_SIMFHE_MODEL_H
#define MADFHE_SIMFHE_MODEL_H

#include "simfhe/config.h"
#include "simfhe/cost.h"

namespace madfhe {
namespace simfhe {

class CostModel
{
  public:
    CostModel(const SchemeConfig& scheme, const CacheConfig& cache,
              const Optimizations& requested);

    const SchemeConfig& scheme() const { return s; }
    const CacheConfig& cache() const { return c; }
    /** The requested optimizations intersected with cache feasibility. */
    const Optimizations& effective() const { return opt; }

    // --- Table 2 / Table 4 primitives (l = current limb count) ---
    Cost ptAdd(size_t l) const;
    Cost add(size_t l) const;
    Cost ptMult(size_t l) const;     ///< includes the Rescale
    Cost decomp(size_t l) const;
    Cost modUpDigit(size_t l) const; ///< one digit
    Cost kskInnerProd(size_t l) const;
    Cost modDownPoly(size_t l) const; ///< one polynomial, raised -> l
    Cost automorph(size_t l) const;  ///< both polynomials
    Cost mult(size_t l) const;       ///< Mult incl. relin + rescale
    Cost rotate(size_t l) const;     ///< Automorph + KeySwitch
    Cost conjugate(size_t l) const { return rotate(l); }
    Cost rescale(size_t l) const;    ///< both polynomials

    /** Full KeySwitch of one polynomial (Algorithm 3). */
    Cost keySwitch(size_t l) const;

    /**
     * One PtMatVecMult with `diagonals` nonzero generalized diagonals at
     * limb count l, following the BSGS schedule with ModUp hoisting
     * (always on — it is part of the Jung et al. baseline) and ModDown
     * hoisting when enabled.
     */
    Cost ptMatVecMult(size_t l, size_t diagonals) const;

    /** The EvalMod phase (degree-~63 scaled sine, 9 levels). */
    Cost evalMod(size_t l) const;

    /** ModRaise from a nearly-exhausted ciphertext to boot_limbs. */
    Cost modRaise() const;

    /** Full bootstrapping (Algorithm 4). */
    Cost bootstrap() const;

    /** Per-phase bootstrap costs (sums to bootstrap()). */
    struct BootstrapBreakdown
    {
        Cost mod_raise;
        Cost coeff_to_slot;
        Cost eval_mod; ///< includes the conjugation split
        Cost slot_to_coeff;

        Cost
        total() const
        {
            return mod_raise + coeff_to_slot + eval_mod + slot_to_coeff;
        }
    };
    BootstrapBreakdown bootstrapBreakdown() const;

    /** Diagonal count of DFT factor `i` (0-based) in one phase. */
    size_t dftFactorDiagonals(size_t i) const;

    /** Switching-key bytes read per KeySwitch at limb count l. */
    double keyReadBytes(size_t l) const;

  private:
    // Compute helpers.
    Cost nttLimbs(double count) const;
    Cost conversion(double src, double dst) const;
    Cost pointwise(double limbs, double mul_per_coeff,
                   double add_per_coeff) const;
    // DRAM helpers (limb-granularity, converted to bytes).
    double lb(double limbs) const { return limbs * s.limbBytes(); }

    SchemeConfig s;
    CacheConfig c;
    Optimizations opt;
};

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_MODEL_H
