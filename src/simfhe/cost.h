/**
 * @file
 * The cost vector SimFHE accumulates: modular multiplies/adds on the
 * compute side and DRAM bytes by traffic class on the memory side. The
 * traffic classes mirror the paper's Figures 2-3 breakdown (ciphertext
 * limb reads/writes vs. switching-key reads vs. plaintext reads).
 */
#ifndef MADFHE_SIMFHE_COST_H
#define MADFHE_SIMFHE_COST_H

#include <string>

namespace madfhe {
namespace simfhe {

struct Cost
{
    // Compute (counts of modular word operations).
    double mul = 0;
    double add = 0;
    // DRAM traffic in bytes.
    double ct_read = 0;
    double ct_write = 0;
    double key_read = 0;
    double pt_read = 0;

    double ops() const { return mul + add; }
    double bytes() const { return ct_read + ct_write + key_read + pt_read; }
    /** Arithmetic intensity in ops/byte (Table 4). */
    double
    intensity() const
    {
        return bytes() > 0 ? ops() / bytes() : 0.0;
    }

    Cost&
    operator+=(const Cost& o)
    {
        mul += o.mul;
        add += o.add;
        ct_read += o.ct_read;
        ct_write += o.ct_write;
        key_read += o.key_read;
        pt_read += o.pt_read;
        return *this;
    }

    friend Cost
    operator+(Cost a, const Cost& b)
    {
        a += b;
        return a;
    }

    Cost
    operator*(double k) const
    {
        return Cost{mul * k, add * k, ct_read * k, ct_write * k,
                    key_read * k, pt_read * k};
    }

    /** Human-readable one-liner (Gops / GB / AI). */
    std::string summary() const;
};

} // namespace simfhe
} // namespace madfhe

#endif // MADFHE_SIMFHE_COST_H
