#include "boot/chebyshev.h"

#include <cmath>

namespace madfhe {

std::vector<double>
chebyshevInterpolate(const std::function<double(double)>& f, size_t degree)
{
    const size_t m = degree + 1;
    const double pi = std::acos(-1.0);
    std::vector<double> samples(m);
    for (size_t i = 0; i < m; ++i) {
        double theta = pi * (static_cast<double>(i) + 0.5) /
                       static_cast<double>(m);
        samples[i] = f(std::cos(theta));
    }
    std::vector<double> coeffs(m);
    for (size_t k = 0; k < m; ++k) {
        double acc = 0;
        for (size_t i = 0; i < m; ++i) {
            double theta = pi * (static_cast<double>(i) + 0.5) /
                           static_cast<double>(m);
            acc += samples[i] * std::cos(static_cast<double>(k) * theta);
        }
        coeffs[k] = acc * (k == 0 ? 1.0 : 2.0) / static_cast<double>(m);
    }
    return coeffs;
}

double
chebyshevEval(const std::vector<double>& coeffs, double x)
{
    // Clenshaw recurrence.
    double b1 = 0, b2 = 0;
    for (size_t k = coeffs.size(); k-- > 1;) {
        double b0 = coeffs[k] + 2 * x * b1 - b2;
        b2 = b1;
        b1 = b0;
    }
    return coeffs[0] + x * b1 - b2;
}

namespace {

/**
 * Divide a Chebyshev series by T_g: c = q * T_g + r with deg r < g,
 * using 2 T_g T_j = T_(g+j) + T_(g-j).
 */
void
chebyshevDivide(const std::vector<double>& c, size_t g,
                std::vector<double>& q, std::vector<double>& r)
{
    const size_t deg = c.size() - 1;
    MAD_CHECK(deg >= g && deg < 2 * g, "divide expects g <= deg < 2g");
    std::vector<double> cc = c;
    q.assign(deg - g + 1, 0.0);
    for (size_t j = deg; j > g; --j) {
        if (cc[j] == 0.0)
            continue;
        q[j - g] = 2 * cc[j];
        cc[2 * g - j] -= cc[j];
        cc[j] = 0;
    }
    q[0] = cc[g];
    r.assign(cc.begin(), cc.begin() + g);
}

/** Drop both ciphertexts to the smaller of the two levels. */
void
alignPair(const Evaluator& eval, Ciphertext& a, Ciphertext& b)
{
    size_t lvl = std::min(a.level(), b.level());
    if (a.level() > lvl)
        a = eval.dropToLevel(a, lvl);
    if (b.level() > lvl)
        b = eval.dropToLevel(b, lvl);
}

} // namespace

ChebyshevEvaluator::ChebyshevEvaluator(std::shared_ptr<const CkksContext> ctx_,
                                       std::vector<double> coeffs_)
    : ctx(std::move(ctx_)), coeffs(std::move(coeffs_))
{
    MAD_REQUIRE(coeffs.size() >= 2, "need degree >= 1");
    size_t d = coeffs.size() - 1;
    baby_count = 2;
    while (baby_count * baby_count < d + 1)
        baby_count <<= 1;
}

size_t
ChebyshevEvaluator::depth() const
{
    size_t d = coeffs.size() - 1;
    return static_cast<size_t>(std::ceil(std::log2(
               static_cast<double>(d + 1)))) + 2;
}

Ciphertext
ChebyshevEvaluator::linearCombo(const Evaluator& eval,
                                const CkksEncoder& encoder,
                                const std::vector<double>& c,
                                const std::vector<Ciphertext>& baby,
                                size_t target_level) const
{
    MAD_CHECK(c.size() <= baby_count, "combo degree exceeds baby table");
    const double pt_scale = ctx->scale();

    Ciphertext acc;
    bool first = true;
    for (size_t j = 1; j < c.size(); ++j) {
        if (c[j] == 0.0)
            continue;
        Ciphertext t = eval.dropToLevel(baby[j], target_level);
        Plaintext pc = encoder.encodeScalar({c[j], 0.0}, pt_scale,
                                            target_level);
        Ciphertext term = eval.mulPlain(t, pc);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = eval.add(acc, term);
        }
    }
    if (first) {
        // All coefficients above T_0 vanish: 0 * T_1 keeps the shape.
        Ciphertext t = eval.dropToLevel(baby[1], target_level);
        Plaintext pc = encoder.encodeScalar({0.0, 0.0}, pt_scale,
                                            target_level);
        acc = eval.mulPlain(t, pc);
    }
    acc = eval.rescale(acc);
    if (c[0] != 0.0)
        acc = eval.addScalar(acc, c[0], encoder);
    return acc;
}

Ciphertext
ChebyshevEvaluator::evalRecurse(const Evaluator& eval,
                                const CkksEncoder& encoder,
                                const std::vector<double>& c,
                                const std::vector<Ciphertext>& baby,
                                const std::vector<Ciphertext>& giant,
                                const SwitchingKey& rlk,
                                size_t target_level) const
{
    if (c.size() <= baby_count)
        return linearCombo(eval, encoder, c, baby, target_level);

    // Largest giant T_(bs * 2^k) not exceeding the degree.
    const size_t deg = c.size() - 1;
    size_t k = 0;
    while (baby_count * (size_t(2) << k) <= deg)
        ++k;
    size_t g = baby_count << k;

    std::vector<double> q, r;
    chebyshevDivide(c, g, q, r);

    Ciphertext qc = evalRecurse(eval, encoder, q, baby, giant, rlk,
                                target_level);
    Ciphertext rc = evalRecurse(eval, encoder, r, baby, giant, rlk,
                                target_level);
    Ciphertext gk = giant[k];
    alignPair(eval, qc, gk);
    Ciphertext prod = eval.mul(qc, gk, rlk);
    alignPair(eval, prod, rc);
    return eval.add(prod, rc);
}

Ciphertext
ChebyshevEvaluator::evaluate(const Evaluator& eval,
                             const CkksEncoder& encoder, const Ciphertext& x,
                             const SwitchingKey& rlk) const
{
    const size_t d = coeffs.size() - 1;

    // Baby table T_1 .. T_(bs-1) by balanced products:
    // T_(a+b) = 2 T_a T_b - T_(a-b).
    std::vector<Ciphertext> baby(baby_count);
    baby[1] = x;
    for (size_t j = 2; j < baby_count; ++j) {
        size_t a = (j + 1) / 2, b = j / 2;
        Ciphertext ta = baby[a], tb = baby[b];
        alignPair(eval, ta, tb);
        Ciphertext prod = eval.mul(ta, tb, rlk);
        prod = eval.add(prod, prod);
        if (a == b) {
            prod = eval.addScalar(prod, -1.0, encoder); // T_0 = 1
        } else {
            Ciphertext tc = eval.dropToLevel(baby[a - b], prod.level());
            prod = eval.sub(prod, tc);
        }
        baby[j] = std::move(prod);
    }

    // Giant table G_k = T_(bs * 2^k) by doubling: T_2m = 2 T_m^2 - 1.
    std::vector<Ciphertext> giant;
    {
        size_t a = baby_count / 2;
        Ciphertext tm = baby[a]; // T_(bs/2)
        Ciphertext g0 = eval.square(tm, rlk);
        g0 = eval.add(g0, g0);
        g0 = eval.addScalar(g0, -1.0, encoder);
        giant.push_back(g0);
        size_t m = baby_count;
        while (m * 2 <= d) {
            Ciphertext next = eval.square(giant.back(), rlk);
            next = eval.add(next, next);
            next = eval.addScalar(next, -1.0, encoder);
            giant.push_back(std::move(next));
            m *= 2;
        }
    }

    size_t target_level = giant.back().level();
    for (const auto& b : baby)
        if (!b.c0.empty())
            target_level = std::min(target_level, b.level());

    return evalRecurse(eval, encoder, coeffs, baby, giant, rlk,
                       target_level);
}

} // namespace madfhe
