/**
 * @file
 * Factorized homomorphic DFT matrices for bootstrapping (the CoeffToSlot /
 * SlotToCoeff phases of Algorithm 4). The special DFT E[j][k] =
 * zeta^(k * 5^j) is factorized into log2(n) radix-2 butterfly stages (each
 * three generalized diagonals); stages are grouped into `iters` factors —
 * the paper's fftIter parameter — and each factor becomes one
 * PtMatVecMult.
 *
 * Convention: CoeffToSlot (E^{-1}, decimation-in-frequency) emits its
 * output in bit-reversed slot order and SlotToCoeff (E, decimation-in-
 * time) consumes bit-reversed input. The modular-reduction step between
 * them is slot-wise, so the permutation cancels and never has to be
 * evaluated homomorphically.
 */
#ifndef MADFHE_BOOT_DFT_H
#define MADFHE_BOOT_DFT_H

#include <complex>
#include <map>
#include <vector>

#include "support/common.h"

namespace madfhe {

/** A linear map on slot vectors in generalized-diagonal form:
 *  y[k] = sum_d diag[d][k] * x[(k + d) mod n]. */
using DiagonalMap = std::map<int, std::vector<std::complex<double>>>;

/** Apply a diagonal map to a plain vector (reference semantics). */
std::vector<std::complex<double>>
applyDiagonalMap(const DiagonalMap& m,
                 const std::vector<std::complex<double>>& x);

/** Compose two diagonal maps: result = a after b (y = A (B x)). */
DiagonalMap composeDiagonalMaps(const DiagonalMap& a, const DiagonalMap& b,
                                size_t slots);

/**
 * The factors of SlotToCoeff (multiplication by E), to be applied in the
 * returned order. `scale_factor` is distributed geometrically across the
 * factors (the bootstrapping pipeline folds constants like q0*K/Delta into
 * these matrices).
 */
std::vector<DiagonalMap> slotToCoeffFactors(size_t slots, size_t iters,
                                            double scale_factor = 1.0);

/** The factors of CoeffToSlot (multiplication by E^{-1}), in application
 *  order, output bit-reversed. */
std::vector<DiagonalMap> coeffToSlotFactors(size_t slots, size_t iters,
                                            double scale_factor = 1.0);

/** Dense reference E (slots x slots), E[j][k] = zeta^(k * 5^j) with zeta a
 *  primitive (4*slots)-th root — for tests. */
std::vector<std::vector<std::complex<double>>> specialDftMatrix(size_t slots);

/** Bit-reversal permutation of a vector (for tests). */
std::vector<std::complex<double>>
bitReverse(const std::vector<std::complex<double>>& x);

} // namespace madfhe

#endif // MADFHE_BOOT_DFT_H
