/**
 * @file
 * Full CKKS bootstrapping (Algorithm 4): ModRaise, CoeffToSlot (factorized
 * homomorphic DFT), approximate modular reduction via a Chebyshev sine
 * series, SlotToCoeff. All scaling constants (1/(q0*K), Delta/(q0*K)
 * inverses, the 1/2 of the conjugation split) are folded into the DFT
 * factor matrices so the ciphertext scale stays near Delta throughout.
 */
#ifndef MADFHE_BOOT_BOOTSTRAPPER_H
#define MADFHE_BOOT_BOOTSTRAPPER_H

#include "boot/chebyshev.h"
#include "boot/dft.h"
#include "ckks/matvec.h"

namespace madfhe {

struct BootstrapParams
{
    /** fftIter for the CoeffToSlot phase (Table 5). */
    size_t ctos_iters = 3;
    /** fftIter for the SlotToCoeff phase. */
    size_t stoc_iters = 3;
    /** Degree of the Chebyshev approximation of sin. */
    size_t sine_degree = 71;
    /**
     * Bound on the ModRaise overflow count I (|I| < K). Must cover the
     * secret's Hamming weight: K ~ O(sqrt(h)).
     */
    double k_bound = 8.0;
    /** PtMatVecMult hoisting configuration for the DFT factors. */
    MatVecOptions matvec;
};

class Bootstrapper
{
  public:
    Bootstrapper(std::shared_ptr<const CkksContext> ctx,
                 BootstrapParams params);

    const BootstrapParams& params() const { return parms; }

    /** Rotation steps the DFT factors need Galois keys for (conjugation is
     *  needed too — pass include_conjugate=true to galoisKeys()). */
    std::vector<int> requiredRotations() const;

    /** Multiplicative levels one bootstrap consumes. */
    size_t depth() const;

    /**
     * Refresh a ciphertext that has been squeezed down to one limb:
     * returns an encryption of the same message with `depth()` fewer
     * limbs than the chain maximum.
     */
    Ciphertext bootstrap(const Evaluator& eval, const CkksEncoder& encoder,
                         const Ciphertext& ct, const GaloisKeys& gks,
                         const SwitchingKey& rlk) const;

    /** ModRaise alone (exposed for tests): reinterpret a 1-limb ciphertext
     *  over the full modulus chain. */
    Ciphertext modRaise(const Ciphertext& ct) const;

  private:
    std::shared_ptr<const CkksContext> ctx;
    BootstrapParams parms;
    std::vector<LinearTransform> ctos;
    std::vector<LinearTransform> stoc;
    std::unique_ptr<ChebyshevEvaluator> sine;
};

} // namespace madfhe

#endif // MADFHE_BOOT_BOOTSTRAPPER_H
