/**
 * @file
 * Chebyshev interpolation and homomorphic Chebyshev evaluation — the
 * "PolyEval" approximate-mod-reduction step of Algorithm 4. The evaluator
 * uses the baby-step/giant-step method with Chebyshev-basis polynomial
 * division, giving O(sqrt(d)) ciphertext multiplications and O(log d)
 * depth.
 */
#ifndef MADFHE_BOOT_CHEBYSHEV_H
#define MADFHE_BOOT_CHEBYSHEV_H

#include <functional>

#include "ckks/evaluator.h"

namespace madfhe {

/**
 * Chebyshev-basis coefficients c_0..c_d of the degree-d interpolant of f
 * on [-1, 1] (sampled at Chebyshev nodes).
 */
std::vector<double> chebyshevInterpolate(const std::function<double(double)>& f,
                                         size_t degree);

/** Clenshaw evaluation of a Chebyshev series at x (plain reference). */
double chebyshevEval(const std::vector<double>& coeffs, double x);

/**
 * Homomorphically evaluate sum_k coeffs[k] * T_k(x) on a ciphertext whose
 * slots hold values in [-1, 1].
 *
 * Depth: ceil(log2(degree)) + 2 levels.
 */
class ChebyshevEvaluator
{
  public:
    ChebyshevEvaluator(std::shared_ptr<const CkksContext> ctx,
                       std::vector<double> coeffs);

    size_t degree() const { return coeffs.size() - 1; }
    /** Multiplicative levels evaluate() consumes. */
    size_t depth() const;

    Ciphertext evaluate(const Evaluator& eval, const CkksEncoder& encoder,
                        const Ciphertext& x, const SwitchingKey& rlk) const;

  private:
    /** Recursive BSGS combine over the Chebyshev basis. */
    Ciphertext evalRecurse(const Evaluator& eval, const CkksEncoder& encoder,
                           const std::vector<double>& c,
                           const std::vector<Ciphertext>& baby,
                           const std::vector<Ciphertext>& giant,
                           const SwitchingKey& rlk, size_t target_level) const;

    /** Linear combination of baby ciphertexts with scalar coefficients. */
    Ciphertext linearCombo(const Evaluator& eval, const CkksEncoder& encoder,
                           const std::vector<double>& c,
                           const std::vector<Ciphertext>& baby,
                           size_t target_level) const;

    std::shared_ptr<const CkksContext> ctx;
    std::vector<double> coeffs;
    size_t baby_count; // power of two
};

} // namespace madfhe

#endif // MADFHE_BOOT_CHEBYSHEV_H
