#include "boot/dft.h"

#include <cmath>

#include "support/parallel.h"

namespace madfhe {

namespace {

std::complex<double>
rootOfUnity(double num, double den)
{
    const double pi = std::acos(-1.0);
    double angle = 2.0 * pi * num / den;
    return {std::cos(angle), std::sin(angle)};
}

/** Twiddle for stage size `len`, in-block output index j:
 *  T_j = exp(2*pi*i*(5^j mod 4len)/(4len)). */
std::complex<double>
stageTwiddle(size_t len, size_t j)
{
    const u64 m = 4 * static_cast<u64>(len);
    u64 pow5 = 1;
    for (size_t t = 0; t < j; ++t)
        pow5 = (pow5 * 5) % m;
    return rootOfUnity(static_cast<double>(pow5), static_cast<double>(m));
}

/** Forward (DIT) butterfly stage of size `len` as a diagonal map. */
DiagonalMap
forwardStage(size_t slots, size_t len)
{
    const size_t lenh = len / 2;
    DiagonalMap m;
    auto& d0 = m[0];
    auto& dplus = m[static_cast<int>(lenh)];
    auto& dminus = m[static_cast<int>(slots - lenh)];
    d0.assign(slots, {0, 0});
    dplus.assign(slots, {0, 0});
    dminus.assign(slots, {0, 0});
    for (size_t k = 0; k < slots; ++k) {
        size_t pos = k % len;
        if (pos < lenh) {
            // y[k] = x[k] + T_pos * x[k + lenh]
            d0[k] = {1, 0};
            dplus[k] = stageTwiddle(len, pos);
        } else {
            // y[k] = x[k - lenh] - T_j * x[k]
            size_t j = pos - lenh;
            d0[k] = -stageTwiddle(len, j);
            dminus[k] = {1, 0};
        }
    }
    return m;
}

/** Inverse (DIF) butterfly stage of size `len` as a diagonal map. */
DiagonalMap
inverseStage(size_t slots, size_t len)
{
    const size_t lenh = len / 2;
    DiagonalMap m;
    auto& d0 = m[0];
    auto& dplus = m[static_cast<int>(lenh)];
    auto& dminus = m[static_cast<int>(slots - lenh)];
    d0.assign(slots, {0, 0});
    dplus.assign(slots, {0, 0});
    dminus.assign(slots, {0, 0});
    for (size_t k = 0; k < slots; ++k) {
        size_t pos = k % len;
        if (pos < lenh) {
            // x[k] = (y[k] + y[k + lenh]) / 2
            d0[k] = {0.5, 0};
            dplus[k] = {0.5, 0};
        } else {
            // x[k] = conj(T_j) * (y[k - lenh] - y[k]) / 2
            size_t j = pos - lenh;
            auto half_conj = std::conj(stageTwiddle(len, j)) * 0.5;
            d0[k] = -half_conj;
            dminus[k] = half_conj;
        }
    }
    return m;
}

void
scaleMap(DiagonalMap& m, double factor)
{
    for (auto& [d, v] : m) {
        (void)d;
        for (auto& z : v)
            z *= factor;
    }
}

/** Group an ordered stage list into `iters` composed factors. */
std::vector<DiagonalMap>
groupStages(std::vector<DiagonalMap> stages, size_t iters, size_t slots,
            double scale_factor)
{
    MAD_REQUIRE(iters >= 1 && iters <= stages.size(),
            "fftIter must be in [1, log2(slots)]");
    const size_t total = stages.size();
    std::vector<DiagonalMap> factors;
    size_t consumed = 0;
    for (size_t g = 0; g < iters; ++g) {
        // Balanced partition of the stages across factors.
        size_t take = (total - consumed) / (iters - g);
        DiagonalMap acc = std::move(stages[consumed]);
        for (size_t t = 1; t < take; ++t)
            acc = composeDiagonalMaps(stages[consumed + t], acc, slots);
        consumed += take;
        double per_factor =
            std::pow(scale_factor, 1.0 / static_cast<double>(iters));
        scaleMap(acc, per_factor);
        factors.push_back(std::move(acc));
    }
    return factors;
}

} // namespace

std::vector<std::complex<double>>
applyDiagonalMap(const DiagonalMap& m,
                 const std::vector<std::complex<double>>& x)
{
    const size_t n = x.size();
    std::vector<std::complex<double>> y(n, {0, 0});
    // Slot-major so each output index accumulates its diagonals in map
    // order regardless of chunking — bit-identical at any thread count.
    parallelForRange(n, [&](size_t begin, size_t end) {
        for (const auto& [d, diag] : m) {
            size_t dd = (static_cast<size_t>(d % static_cast<int>(n)) + n) % n;
            for (size_t k = begin; k < end; ++k)
                y[k] += diag[k] * x[(k + dd) % n];
        }
    });
    return y;
}

DiagonalMap
composeDiagonalMaps(const DiagonalMap& a, const DiagonalMap& b, size_t slots)
{
    DiagonalMap out;
    for (const auto& [da, va] : a) {
        for (const auto& [db, vb] : b) {
            int d = (da + db) % static_cast<int>(slots);
            if (d < 0)
                d += static_cast<int>(slots);
            auto& dst = out[d];
            if (dst.empty())
                dst.assign(slots, {0, 0});
            parallelForRange(slots, [&](size_t begin, size_t end) {
                for (size_t k = begin; k < end; ++k) {
                    size_t mid = (k + static_cast<size_t>(
                                      ((da % int(slots)) + int(slots))))
                                 % slots;
                    dst[k] += va[k] * vb[mid];
                }
            });
        }
    }
    // Prune all-zero diagonals produced by structural cancellation.
    for (auto it = out.begin(); it != out.end();) {
        bool zero = true;
        for (const auto& z : it->second) {
            if (std::abs(z) > 1e-12) {
                zero = false;
                break;
            }
        }
        it = zero ? out.erase(it) : ++it;
    }
    return out;
}

std::vector<DiagonalMap>
slotToCoeffFactors(size_t slots, size_t iters, double scale_factor)
{
    MAD_REQUIRE(isPowerOfTwo(slots), "slot count must be a power of two");
    std::vector<DiagonalMap> stages;
    for (size_t len = 2; len <= slots; len <<= 1)
        stages.push_back(forwardStage(slots, len));
    return groupStages(std::move(stages), iters, slots, scale_factor);
}

std::vector<DiagonalMap>
coeffToSlotFactors(size_t slots, size_t iters, double scale_factor)
{
    MAD_REQUIRE(isPowerOfTwo(slots), "slot count must be a power of two");
    std::vector<DiagonalMap> stages;
    for (size_t len = slots; len >= 2; len >>= 1)
        stages.push_back(inverseStage(slots, len));
    return groupStages(std::move(stages), iters, slots, scale_factor);
}

std::vector<std::vector<std::complex<double>>>
specialDftMatrix(size_t slots)
{
    std::vector<std::vector<std::complex<double>>> e(
        slots, std::vector<std::complex<double>>(slots));
    const u64 m = 4 * slots;
    u64 pow5 = 1;
    for (size_t j = 0; j < slots; ++j) {
        for (size_t k = 0; k < slots; ++k) {
            u64 exp = (static_cast<u64>(k) * pow5) % m;
            e[j][k] = rootOfUnity(static_cast<double>(exp),
                                  static_cast<double>(m));
        }
        pow5 = (pow5 * 5) % m;
    }
    return e;
}

std::vector<std::complex<double>>
bitReverse(const std::vector<std::complex<double>>& x)
{
    const size_t n = x.size();
    const unsigned logn = floorLog2(n);
    std::vector<std::complex<double>> y(n);
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (unsigned b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        y[r] = x[i];
    }
    return y;
}

} // namespace madfhe
