#include "boot/bootstrapper.h"

#include <cmath>

#include "memtrace/trace.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_modraise("boot.modraise", faultinject::kLimbKinds);
} // namespace

Bootstrapper::Bootstrapper(std::shared_ptr<const CkksContext> ctx_,
                           BootstrapParams params)
    : ctx(std::move(ctx_)), parms(params)
{
    const size_t slots = ctx->slots();
    const double delta = ctx->scale();
    const double q0 = static_cast<double>(ctx->qValue(0));
    const double k = parms.k_bound;

    // CoeffToSlot carries Delta/(2*q0*K): its output slots are
    // t/(q0*K) after the conjugation split (in [-1, 1]).
    auto ctos_maps =
        coeffToSlotFactors(slots, parms.ctos_iters, delta / (2.0 * q0 * k));
    // SlotToCoeff carries q0*K/Delta, undoing the normalization.
    auto stoc_maps =
        slotToCoeffFactors(slots, parms.stoc_iters, q0 * k / delta);
    for (auto& m : ctos_maps)
        ctos.emplace_back(ctx, std::move(m), delta, parms.matvec);
    for (auto& m : stoc_maps)
        stoc.emplace_back(ctx, std::move(m), delta, parms.matvec);

    // Chebyshev series for f(x) = sin(2*pi*K*x) / (2*pi*K) on [-1, 1].
    const double two_pi_k = 2.0 * std::acos(-1.0) * k;
    auto f = [two_pi_k](double x) { return std::sin(two_pi_k * x) / two_pi_k; };
    sine = std::make_unique<ChebyshevEvaluator>(
        ctx, chebyshevInterpolate(f, parms.sine_degree));

}

std::vector<int>
Bootstrapper::requiredRotations() const
{
    std::vector<int> steps;
    for (const auto& f : ctos) {
        auto s = f.requiredRotations();
        steps.insert(steps.end(), s.begin(), s.end());
    }
    for (const auto& f : stoc) {
        auto s = f.requiredRotations();
        steps.insert(steps.end(), s.begin(), s.end());
    }
    return steps;
}

size_t
Bootstrapper::depth() const
{
    return parms.ctos_iters + parms.stoc_iters + sine->depth();
}

Ciphertext
Bootstrapper::modRaise(const Ciphertext& ct) const
{
    MAD_REQUIRE(ct.level() == 1, "modRaise expects a one-limb ciphertext");
    MAD_TRACE_SCOPE("ModRaise");
    TELEM_SPAN("ModRaise");
    const size_t n = ctx->degree();
    const Modulus& q0 = ctx->ring()->modulus(0);
    auto full_basis = ctx->ring()->qIndices(ctx->maxLevel());

    auto raisePoly = [&](const RnsPoly& p) {
        RnsPoly coeff = p;
        coeff.setRep(Rep::Coeff);
        RnsPoly out(ctx->ring(), full_basis, Rep::Coeff);
        const u64* src = coeff.limb(0);
        MAD_TRACE_READ(src, n * sizeof(u64));
        parallelFor(out.numLimbs(), [&](size_t i) {
            const Modulus& qi = ctx->ring()->modulus(i);
            u64* dst = out.limb(i);
            MAD_TRACE_WRITE(dst, n * sizeof(u64));
            for (size_t c = 0; c < n; ++c)
                dst[c] = qi.fromSigned(q0.toSigned(src[c]));
        });
        out.toEval();
        for (size_t i = 0; i < out.numLimbs(); ++i)
            faultinject::guardLimb(g_fault_modraise, out.limb(i), n);
        return out;
    };

    Ciphertext out;
    out.c0 = raisePoly(ct.c0);
    out.c1 = raisePoly(ct.c1);
    out.scale = ct.scale;
    return out;
}

Ciphertext
Bootstrapper::bootstrap(const Evaluator& eval, const CkksEncoder& encoder,
                        const Ciphertext& ct_in, const GaloisKeys& gks,
                        const SwitchingKey& rlk) const
{
    MAD_ERROR_OP("Bootstrap");
    MAD_TRACE_SCOPE("Bootstrap");
    TELEM_SPAN("Bootstrap");
    Ciphertext ct = ct_in.level() == 1 ? ct_in : eval.dropToLevel(ct_in, 1);

    // 1. ModRaise: plaintext becomes Delta*m + q0*I over the full chain.
    Ciphertext t = modRaise(ct);

    // 2. CoeffToSlot: slots become coefficient pairs, scaled into [-1,1].
    {
        MAD_TRACE_SCOPE("CoeffToSlot");
        TELEM_SPAN("CoeffToSlot");
        for (const auto& f : ctos)
            t = f.apply(eval, encoder, t, gks);
    }

    Ciphertext u;
    {
        MAD_TRACE_SCOPE("EvalMod");
        TELEM_SPAN("EvalMod");
        // 3. Conjugation split: real and imaginary coefficient halves.
        Ciphertext t_conj = eval.conjugate(t, gks);
        Ciphertext ct_re = eval.add(t, t_conj);
        Ciphertext ct_im =
            eval.negate(eval.mulImaginary(eval.sub(t, t_conj)));

        // 4. Approximate mod reduction on both halves (Algorithm 4, line 5).
        Ciphertext re2 = sine->evaluate(eval, encoder, ct_re, rlk);
        Ciphertext im2 = sine->evaluate(eval, encoder, ct_im, rlk);

        // 5. Recombine into complex coefficient pairs.
        size_t lvl = std::min(re2.level(), im2.level());
        re2 = eval.dropToLevel(re2, lvl);
        im2 = eval.dropToLevel(im2, lvl);
        u = eval.add(re2, eval.mulImaginary(im2));
    }

    // 6. SlotToCoeff: return to coefficient encoding. The folded
    // constants cancel, so the tracked scale lands near Delta.
    {
        MAD_TRACE_SCOPE("SlotToCoeff");
        TELEM_SPAN("SlotToCoeff");
        for (const auto& f : stoc)
            u = f.apply(eval, encoder, u, gks);
    }
    return u;
}

} // namespace madfhe
