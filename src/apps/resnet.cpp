#include "apps/resnet.h"

namespace madfhe {
namespace apps {

using simfhe::Cost;
using simfhe::CostModel;

Cost
resnetInferenceCost(const CostModel& model, const ResnetConfig& cfg)
{
    const auto& s = model.scheme();
    simfhe::SchemeConfig boot_scheme = s;
    boot_scheme.boot_slots = cfg.boot_slots;
    CostModel boot_model(boot_scheme, model.cache(), model.effective());
    const size_t usable =
        s.boot_limbs > s.bootstrapDepth() ? s.boot_limbs - s.bootstrapDepth()
                                          : 8;

    Cost total;
    for (size_t layer = 0; layer < cfg.conv_layers; ++layer) {
        size_t level = usable;
        // Convolution as matvec(s).
        for (size_t m = 0; m < cfg.matvecs_per_layer; ++m)
            total += model.ptMatVecMult(level, cfg.conv_diagonals);
        level = level > 2 ? level - 1 : level;
        // Polynomial ReLU.
        size_t relu_level = std::max<size_t>(level, cfg.relu_depth + 2);
        for (size_t m = 0; m < cfg.relu_mults; ++m) {
            total += model.mult(relu_level);
            if (relu_level > cfg.relu_depth + 2 && m % 2 == 1)
                relu_level -= 1;
        }
        total += model.add(relu_level) * 4.0;
    }
    // Downsample/pool/FC tail: a few matvecs at low level.
    total += model.ptMatVecMult(usable / 2 + 2, 16) * 3.0;
    // Bootstraps dominate (Section 1: ~80% of runtime even optimized).
    for (size_t b = 0; b < cfg.bootstraps; ++b)
        total += boot_model.bootstrap();
    return total;
}

} // namespace apps
} // namespace madfhe
