#include "apps/lr.h"

#include <cmath>

#include "ckks/backend.h"
#include "graph/exec.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace apps {

double
sigmoidApprox(double z)
{
    return 0.5 + 0.25 * z - z * z * z / 48.0;
}

LrDataset
LrDataset::twoGaussians(size_t samples, size_t features, u64 seed)
{
    Prng rng(seed);
    auto gauss = [&rng]() {
        double u1 = rng.uniformReal() + 1e-12, u2 = rng.uniformReal();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::acos(-1.0) * u2);
    };
    LrDataset d;
    d.features.assign(features, std::vector<double>(samples));
    d.labels.resize(samples);
    for (size_t i = 0; i < samples; ++i) {
        bool positive = (i % 2) == 0;
        d.labels[i] = positive ? 1.0 : 0.0;
        for (size_t j = 0; j < features; ++j) {
            double mean = positive ? 0.35 : -0.35;
            d.features[j][i] = mean + 0.25 * gauss();
        }
    }
    return d;
}

double
LrModel::score(const LrDataset& data, size_t sample) const
{
    double z = 0;
    for (size_t j = 0; j < weights.size(); ++j)
        z += weights[j] * data.features[j][sample];
    return z;
}

double
LrModel::accuracy(const LrDataset& data) const
{
    size_t correct = 0;
    for (size_t i = 0; i < data.sampleCount(); ++i)
        correct += ((score(data, i) > 0) == (data.labels[i] > 0.5));
    return static_cast<double>(correct) /
           static_cast<double>(data.sampleCount());
}

EncryptedLrTrainer::EncryptedLrTrainer(
    std::shared_ptr<const CkksContext> ctx_, LrConfig config)
    : ctx(std::move(ctx_)), cfg(config)
{
    MAD_REQUIRE(cfg.features >= 1, "need at least one feature");
    MAD_REQUIRE(cfg.iterations >= 1, "need at least one iteration");
    size_t depth_needed = cfg.iterations * levelsPerIteration() + 1;
    MAD_REQUIRE(ctx->maxLevel() > depth_needed,
            "not enough levels for the requested iteration count");
}

std::vector<int>
EncryptedLrTrainer::requiredRotations() const
{
    std::vector<int> steps;
    for (size_t s = 1; s < ctx->slots(); s <<= 1)
        steps.push_back(static_cast<int>(s));
    return steps;
}

std::vector<Ciphertext>
EncryptedLrTrainer::encryptFeatures(const CkksEncoder& encoder,
                                    Encryptor& encryptor,
                                    const LrDataset& data) const
{
    MAD_REQUIRE(data.features.size() == cfg.features, "feature count mismatch");
    MAD_REQUIRE(data.sampleCount() <= ctx->slots(), "too many samples");
    std::vector<Ciphertext> out;
    out.reserve(cfg.features);
    for (const auto& column : data.features) {
        out.push_back(encryptor.encrypt(
            encoder.encodeReal(column, ctx->scale(), ctx->maxLevel())));
    }
    return out;
}

Ciphertext
EncryptedLrTrainer::encryptLabels(const CkksEncoder& encoder,
                                  Encryptor& encryptor,
                                  const LrDataset& data) const
{
    return encryptor.encrypt(
        encoder.encodeReal(data.labels, ctx->scale(), ctx->maxLevel()));
}

Ciphertext
EncryptedLrTrainer::slotSum(const Evaluator& eval, Ciphertext ct,
                            const GaloisKeys& gks) const
{
    for (size_t s = 1; s < ctx->slots(); s <<= 1)
        ct = eval.add(ct, eval.rotate(ct, static_cast<int>(s), gks));
    return ct;
}

std::vector<Ciphertext>
EncryptedLrTrainer::initialWeights(const CkksEncoder& encoder,
                                   Encryptor& encryptor) const
{
    std::vector<Ciphertext> weights;
    for (size_t j = 0; j < cfg.features; ++j)
        weights.push_back(encryptor.encrypt(encoder.encodeScalar(
            {0.0, 0.0}, ctx->scale(), ctx->maxLevel())));
    return weights;
}

std::vector<Ciphertext>
EncryptedLrTrainer::train(const Evaluator& eval, const CkksEncoder& encoder,
                          Encryptor& encryptor,
                          const std::vector<Ciphertext>& features,
                          const Ciphertext& labels, const SwitchingKey& rlk,
                          const GaloisKeys& gks) const
{
    return train(eval, encoder, initialWeights(encoder, encryptor), features,
                 labels, rlk, gks);
}

std::vector<Ciphertext>
EncryptedLrTrainer::train(const Evaluator& eval, const CkksEncoder& encoder,
                          const std::vector<Ciphertext>& weights0,
                          const std::vector<Ciphertext>& features,
                          const Ciphertext& labels, const SwitchingKey& rlk,
                          const GaloisKeys& gks) const
{
    MAD_REQUIRE(features.size() == cfg.features, "feature ciphertext count");
    MAD_REQUIRE(weights0.size() == cfg.features, "weight ciphertext count");
    TELEM_SPAN("LrTrain");
    const size_t slots = ctx->slots();

    std::vector<Ciphertext> weights = weights0;

    for (size_t it = 0; it < cfg.iterations; ++it) {
        TELEM_SPAN("LrIteration");
        // margin = sum_j w_j * x_j
        size_t lvl = weights[0].level();
        Ciphertext margin;
        for (size_t j = 0; j < cfg.features; ++j) {
            Ciphertext xj = eval.dropToLevel(features[j], lvl);
            Ciphertext term = eval.mul(weights[j], xj, rlk);
            margin = (j == 0) ? term : eval.add(margin, term);
        }

        // sigmoid(margin) ~ 0.5 + 0.25 m - m^3 / 48
        Ciphertext m2 = eval.square(margin, rlk);
        Ciphertext m3 =
            eval.mul(m2, eval.dropToLevel(margin, m2.level()), rlk);
        Ciphertext lin = eval.mulScalarRescale(margin, 0.25);
        Ciphertext cub = eval.mulScalarRescale(m3, -1.0 / 48.0);
        lin = eval.dropToLevel(lin, cub.level());
        Ciphertext sig = eval.addScalar(eval.add(lin, cub), 0.5, encoder);

        // error = sigmoid - y; w_j -= lr * mean(error * x_j)
        Ciphertext err = eval.sub(sig, eval.dropToLevel(labels, sig.level()));
        for (size_t j = 0; j < cfg.features; ++j) {
            Ciphertext xj = eval.dropToLevel(features[j], err.level());
            Ciphertext g = slotSum(eval, eval.mul(err, xj, rlk), gks);
            g = eval.mulScalarRescale(
                g, -cfg.learning_rate / static_cast<double>(slots));
            weights[j] = eval.add(eval.dropToLevel(weights[j], g.level()), g);
        }
    }
    return weights;
}

graph::Graph
EncryptedLrTrainer::buildTrainGraph() const
{
    // The train() schedule, written with raw ops only: every manual
    // dropToLevel in the imperative body is a level mismatch here that
    // the align pass resolves with the identical drop (lower operand
    // wins), so default passes replay train() byte for byte.
    graph::GraphBuilder b;
    const size_t slots = ctx->slots();
    const size_t top = ctx->maxLevel();
    const double scale = ctx->scale();

    std::vector<graph::NodeRef> w;
    for (size_t j = 0; j < cfg.features; ++j)
        w.push_back(b.input(top, scale));
    std::vector<graph::NodeRef> x;
    for (size_t j = 0; j < cfg.features; ++j)
        x.push_back(b.input(top, scale));
    const graph::NodeRef y = b.input(top, scale);

    for (size_t it = 0; it < cfg.iterations; ++it) {
        // margin = sum_j w_j * x_j
        graph::NodeRef margin{};
        for (size_t j = 0; j < cfg.features; ++j) {
            const graph::NodeRef term = b.mul(w[j], x[j]);
            margin = (j == 0) ? term : b.add(margin, term);
        }

        // sigmoid(margin) ~ 0.5 + 0.25 m - m^3 / 48
        const graph::NodeRef m2 = b.square(margin);
        const graph::NodeRef m3 = b.mul(m2, margin);
        const graph::NodeRef lin = b.mulScalar(margin, 0.25);
        const graph::NodeRef cub = b.mulScalar(m3, -1.0 / 48.0);
        const graph::NodeRef sig = b.addScalar(b.add(lin, cub), 0.5);

        // error = sigmoid - y; w_j -= lr * mean(error * x_j)
        const graph::NodeRef err = b.sub(sig, y);
        for (size_t j = 0; j < cfg.features; ++j) {
            graph::NodeRef g = b.mul(err, x[j]);
            for (size_t s = 1; s < slots; s <<= 1)
                g = b.add(g, b.rotate(g, static_cast<int>(s)));
            g = b.mulScalar(
                g, -cfg.learning_rate / static_cast<double>(slots));
            w[j] = b.add(w[j], g);
        }
    }

    b.outputs(w);
    return b.build();
}

std::vector<Ciphertext>
EncryptedLrTrainer::trainGraph(const EvalBackend& backend,
                               const std::vector<Ciphertext>& weights0,
                               const std::vector<Ciphertext>& features,
                               const Ciphertext& labels,
                               const SwitchingKey& rlk, const GaloisKeys& gks,
                               const graph::PassOptions& popts,
                               graph::PassStats* stats) const
{
    MAD_REQUIRE(features.size() == cfg.features, "feature ciphertext count");
    MAD_REQUIRE(weights0.size() == cfg.features, "weight ciphertext count");
    TELEM_SPAN("LrTrainGraph");
    graph::Graph g = buildTrainGraph();
    const graph::PassStats st = graph::runPasses(g, *ctx, popts);
    if (stats != nullptr)
        *stats = st;
    std::vector<Ciphertext> inputs;
    inputs.reserve(2 * cfg.features + 1);
    for (const Ciphertext& ct : weights0)
        inputs.push_back(ct);
    for (const Ciphertext& ct : features)
        inputs.push_back(ct);
    inputs.push_back(labels);
    graph::GraphExecutor exec(backend, &rlk, &gks);
    return exec.run(g, inputs);
}

LrModel
EncryptedLrTrainer::decryptModel(const CkksEncoder& encoder,
                                 Decryptor& decryptor,
                                 const std::vector<Ciphertext>& weights) const
{
    LrModel model;
    for (const auto& w : weights)
        model.weights.push_back(
            encoder.decode(decryptor.decrypt(w))[0].real());
    return model;
}

LrModel
EncryptedLrTrainer::trainPlain(const LrDataset& data) const
{
    const size_t n = data.sampleCount();
    LrModel model;
    model.weights.assign(cfg.features, 0.0);
    for (size_t it = 0; it < cfg.iterations; ++it) {
        std::vector<double> grad(cfg.features, 0.0);
        for (size_t i = 0; i < n; ++i) {
            double e = sigmoidApprox(model.score(data, i)) - data.labels[i];
            for (size_t j = 0; j < cfg.features; ++j)
                grad[j] += e * data.features[j][i];
        }
        // The encrypted reduction divides by the slot count (zero-padded
        // samples contribute zero), so the reference must too.
        for (size_t j = 0; j < cfg.features; ++j)
            model.weights[j] -= cfg.learning_rate * grad[j] /
                                static_cast<double>(ctx->slots());
    }
    return model;
}

} // namespace apps
} // namespace madfhe
