#include "apps/mlp.h"

#include "ckks/backend.h"
#include "graph/exec.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace apps {

std::map<int, std::vector<std::complex<double>>>
blockDenseDiagonals(const std::vector<std::vector<double>>& weights,
                    size_t dim, size_t slots)
{
    MAD_REQUIRE(isPowerOfTwo(dim) && slots % dim == 0,
            "block width must be a power of two dividing the slot count");
    MAD_REQUIRE(!weights.empty() && weights.size() <= dim,
            "matrix height must be in [1, dim]");
    for (const auto& row : weights)
        MAD_REQUIRE(row.size() == dim, "matrix width must equal dim");

    // Slot rotations wrap across the whole vector, so block diagonal d
    // splits into generalized diagonals +d (rows that stay in the block)
    // and d - dim (rows that wrap).
    std::map<int, std::vector<std::complex<double>>> diags;
    diags[0].assign(slots, {0.0, 0.0});
    for (size_t d = 1; d < dim; ++d) {
        diags[static_cast<int>(d)].assign(slots, {0.0, 0.0});
        diags[static_cast<int>(d) - static_cast<int>(dim)]
            .assign(slots, {0.0, 0.0});
    }
    for (size_t k = 0; k < slots; ++k) {
        size_t row = k % dim;
        if (row >= weights.size())
            continue;
        for (size_t d = 0; d < dim; ++d) {
            size_t col = (row + d) % dim;
            int offset = row + d < dim
                             ? static_cast<int>(d)
                             : static_cast<int>(d) - static_cast<int>(dim);
            diags[offset][k] = {weights[row][col], 0.0};
        }
    }
    return diags;
}

EncryptedMlp::EncryptedMlp(
    std::shared_ptr<const CkksContext> ctx_,
    std::vector<std::vector<std::vector<double>>> layers, size_t dim,
    MatVecOptions matvec)
    : ctx(std::move(ctx_)), weights(std::move(layers)), block_dim(dim)
{
    MAD_REQUIRE(!weights.empty(), "need at least one layer");
    MAD_REQUIRE(ctx->maxLevel() > depth(),
            "not enough levels for this network depth");
    for (const auto& w : weights) {
        transforms.emplace_back(
            ctx, blockDenseDiagonals(w, block_dim, ctx->slots()),
            ctx->scale(), matvec);
    }
}

std::vector<int>
EncryptedMlp::requiredRotations() const
{
    std::vector<int> steps;
    for (const auto& t : transforms) {
        auto s = t.requiredRotations();
        steps.insert(steps.end(), s.begin(), s.end());
    }
    return steps;
}

Ciphertext
EncryptedMlp::infer(const Evaluator& eval, const CkksEncoder& encoder,
                    const Ciphertext& input, const GaloisKeys& gks,
                    const SwitchingKey& rlk) const
{
    TELEM_SPAN("MlpInfer");
    Ciphertext ct = transforms[0].apply(eval, encoder, input, gks);
    for (size_t layer = 1; layer < transforms.size(); ++layer) {
        ct = eval.square(ct, rlk);
        ct = transforms[layer].apply(eval, encoder, ct, gks);
    }
    return ct;
}

graph::Graph
EncryptedMlp::buildInferGraph(size_t input_level, double input_scale) const
{
    graph::GraphBuilder b;
    const size_t lvl = input_level == 0 ? ctx->maxLevel() : input_level;
    const double scl = input_scale == 0.0 ? ctx->scale() : input_scale;
    graph::NodeRef ct = b.input(lvl, scl);
    ct = b.matVec(ct, &transforms[0]);
    for (size_t layer = 1; layer < transforms.size(); ++layer) {
        ct = b.square(ct);
        ct = b.matVec(ct, &transforms[layer]);
    }
    b.output(ct);
    return b.build();
}

Ciphertext
EncryptedMlp::inferGraph(const EvalBackend& backend, const Ciphertext& input,
                         const GaloisKeys& gks, const SwitchingKey& rlk,
                         const graph::PassOptions& popts,
                         graph::PassStats* stats) const
{
    TELEM_SPAN("MlpInferGraph");
    graph::Graph g = buildInferGraph();
    const graph::PassStats st = graph::runPasses(g, *ctx, popts);
    if (stats != nullptr)
        *stats = st;
    graph::GraphExecutor exec(backend, &rlk, &gks);
    return exec.run(g, {input}).at(0);
}

std::vector<double>
EncryptedMlp::inferPlain(const std::vector<double>& sample) const
{
    MAD_REQUIRE(sample.size() == block_dim, "sample width must equal dim");
    std::vector<double> cur = sample;
    for (size_t layer = 0; layer < weights.size(); ++layer) {
        const auto& w = weights[layer];
        std::vector<double> next(block_dim, 0.0);
        for (size_t r = 0; r < w.size(); ++r) {
            double acc = 0;
            for (size_t c = 0; c < block_dim; ++c)
                acc += w[r][c] * cur[c];
            next[r] = acc;
        }
        if (layer + 1 < weights.size()) {
            for (auto& v : next)
                v = v * v;
        }
        cur = std::move(next);
    }
    return cur;
}

} // namespace apps
} // namespace madfhe
