/**
 * @file
 * ResNet-20 CIFAR-10 inference schedule (Lee et al. [27], the workload of
 * Figure 6(f-h)): per-layer homomorphic convolutions (PtMatVecMult),
 * polynomial ReLU approximations, and a bootstrap per activation — the
 * bootstrap-dominated profile the paper reports (~80%+ of runtime).
 */
#ifndef MADFHE_APPS_RESNET_H
#define MADFHE_APPS_RESNET_H

#include "simfhe/model.h"

namespace madfhe {
namespace apps {

struct ResnetConfig
{
    /** Convolution layers in ResNet-20. */
    size_t conv_layers = 20;
    /** Diagonals per convolution matvec (3x3 kernel x channel packing). */
    size_t conv_diagonals = 27;
    /** Matvecs per convolution layer (input/output channel blocks). */
    size_t matvecs_per_layer = 2;
    /** Depth of the polynomial ReLU approximation. */
    size_t relu_depth = 5;
    /** Ciphertext mults per ReLU evaluation. */
    size_t relu_mults = 10;
    /** Bootstraps per inference (Lee et al. bootstrap per ReLU block). */
    size_t bootstraps = 19;
    /** Slots per bootstrap (image/channel packing of Lee et al. uses a
     *  sparsely packed bootstrap; 0 = fully packed). */
    size_t boot_slots = 1 << 14;
};

/** Total cost of one encrypted ResNet-20 inference. */
simfhe::Cost resnetInferenceCost(const simfhe::CostModel& model,
                                 const ResnetConfig& cfg = {});

} // namespace apps
} // namespace madfhe

#endif // MADFHE_APPS_RESNET_H
