#include "apps/helr.h"

namespace madfhe {
namespace apps {

using simfhe::Cost;
using simfhe::CostModel;

size_t
helrBootstrapCount(const HelrConfig& cfg)
{
    return ceilDiv(cfg.iterations, cfg.boot_interval);
}

Cost
helrTrainingCost(const CostModel& model, const HelrConfig& cfg)
{
    const auto& s = model.scheme();
    // Sparsely packed bootstrapping per Section 4.3.
    simfhe::SchemeConfig boot_scheme = s;
    boot_scheme.boot_slots = cfg.boot_slots;
    CostModel boot_model(boot_scheme, model.cache(), model.effective());
    // Usable levels between bootstraps.
    const size_t usable =
        s.boot_limbs > s.bootstrapDepth() ? s.boot_limbs - s.bootstrapDepth()
                                          : 8;
    // Each iteration consumes sigmoid_depth + 2 levels (gradient mult,
    // update mult); bootstrap when exhausted per boot_interval.
    const size_t per_iter_depth = cfg.sigmoid_depth + 2;

    Cost total;
    size_t level = usable;
    for (size_t it = 0; it < cfg.iterations; ++it) {
        if (it > 0 && it % cfg.boot_interval == 0) {
            total += boot_model.bootstrap();
            level = usable;
        }
        if (level < per_iter_depth + 2)
            level = per_iter_depth + 2; // floor for the cost model
        // Gradient inner products: hoisted rotation batch + adds.
        total += model.ptMatVecMult(level, cfg.rotations_per_iter);
        // Ciphertext multiplications (gradient x data, weight update).
        for (size_t m = 0; m < cfg.mults_per_iter; ++m)
            total += model.mult(level);
        // Sigmoid polynomial evaluation.
        for (size_t d = 0; d < cfg.sigmoid_depth; ++d)
            total += model.mult(level - d) * 2.0;
        // Plaintext multiplications and additions.
        for (size_t p = 0; p < cfg.ptmults_per_iter; ++p)
            total += model.ptMult(level);
        total += model.add(level) * 6.0;
        level -= per_iter_depth;
    }
    // Final bootstrap count alignment: iterations 3,6,... triggered above;
    // HELR also refreshes once at the end of training.
    total += boot_model.bootstrap();
    return total;
}

} // namespace apps
} // namespace madfhe
