/**
 * @file
 * EncryptedMlp: private inference for a small multilayer perceptron with
 * square activations. Inputs are packed block-wise (one sample per
 * `dim`-slot block, slots/dim samples per ciphertext); dense layers are
 * block-circulant PtMatVecMult linear transforms using the MAD hoisting
 * code paths.
 */
#ifndef MADFHE_APPS_MLP_H
#define MADFHE_APPS_MLP_H

#include "ckks/matvec.h"
#include "graph/passes.h"

namespace madfhe {

class EvalBackend;

namespace apps {

/**
 * Diagonal form of a batched dense layer: the same rows x dim weight
 * matrix applied independently to every dim-slot block of the vector.
 * Exposed for testing and reuse.
 */
std::map<int, std::vector<std::complex<double>>>
blockDenseDiagonals(const std::vector<std::vector<double>>& weights,
                    size_t dim, size_t slots);

class EncryptedMlp
{
  public:
    /**
     * @param layers layers[k] is a rows x dim weight matrix; every layer
     *        consumes `dim` inputs per block (rows <= dim).
     * @param dim block width (power of two, divides the slot count).
     */
    EncryptedMlp(std::shared_ptr<const CkksContext> ctx,
                 std::vector<std::vector<std::vector<double>>> layers,
                 size_t dim, MatVecOptions matvec = {});

    size_t dim() const { return block_dim; }
    size_t numLayers() const { return weights.size(); }
    /** Samples per ciphertext. */
    size_t batch() const { return ctx->slots() / block_dim; }
    /** Levels one inference consumes. */
    size_t depth() const { return 2 * numLayers() - 1; }

    std::vector<int> requiredRotations() const;

    /**
     * Encrypted forward pass: dense -> square -> dense -> ... (square
     * activation between layers, none after the last).
     */
    Ciphertext infer(const Evaluator& eval, const CkksEncoder& encoder,
                     const Ciphertext& input, const GaloisKeys& gks,
                     const SwitchingKey& rlk) const;

    /**
     * The infer() schedule as an evaluation graph: matvec -> square ->
     * matvec -> ... over the layer transforms (which must outlive the
     * graph). `input_level`/`input_scale` default (0/0.0) to the context
     * top level and scale.
     */
    graph::Graph buildInferGraph(size_t input_level = 0,
                                 double input_scale = 0.0) const;

    /**
     * infer() through the graph IR: build, run the pass pipeline,
     * execute over `backend`. Byte-identical to the imperative infer()
     * on the real backend (the matvec fusion pass included).
     */
    Ciphertext inferGraph(const EvalBackend& backend, const Ciphertext& input,
                          const GaloisKeys& gks, const SwitchingKey& rlk,
                          const graph::PassOptions& popts = {},
                          graph::PassStats* stats = nullptr) const;

    /** Plaintext forward pass of one `dim`-sized sample. */
    std::vector<double> inferPlain(const std::vector<double>& sample) const;

  private:
    std::shared_ptr<const CkksContext> ctx;
    std::vector<std::vector<std::vector<double>>> weights;
    size_t block_dim;
    std::vector<LinearTransform> transforms;
};

} // namespace apps
} // namespace madfhe

#endif // MADFHE_APPS_MLP_H
