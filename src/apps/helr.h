/**
 * @file
 * HELR logistic-regression training schedule (Han et al. [18], the
 * workload of Figure 6(a-e)): per-iteration CKKS operation counts fed to
 * the SimFHE cost model, with a bootstrap every `boot_interval`
 * iterations (3 with the paper's optimal parameter set).
 */
#ifndef MADFHE_APPS_HELR_H
#define MADFHE_APPS_HELR_H

#include "simfhe/model.h"

namespace madfhe {
namespace apps {

struct HelrConfig
{
    /** Training iterations (HELR trains MNIST-1024 in ~30). */
    size_t iterations = 30;
    /** Iterations between bootstraps. */
    size_t boot_interval = 3;
    /** Rotations per gradient inner product (log2-tree sums over the
     *  feature dimension plus replication). */
    size_t rotations_per_iter = 18;
    /** Ciphertext-ciphertext multiplications per iteration (gradient and
     *  weight update). */
    size_t mults_per_iter = 6;
    /** Plaintext multiplications per iteration (learning-rate, masks). */
    size_t ptmults_per_iter = 4;
    /** Depth of the degree-7 sigmoid approximation. */
    size_t sigmoid_depth = 3;
    /**
     * Slots per bootstrap; HELR packs the (batch x feature) matrix
     * sparsely, so its bootstraps refresh fewer slots than fully-packed
     * bootstrapping (Section 4.3 of the paper). 0 = fully packed.
     */
    size_t boot_slots = 1 << 13;
};

/**
 * Total cost of HELR training on the given model. Iterations walk the
 * level budget down from logQ1 and each bootstrap restores it.
 */
simfhe::Cost helrTrainingCost(const simfhe::CostModel& model,
                              const HelrConfig& cfg = {});

/** Number of bootstraps the schedule performs. */
size_t helrBootstrapCount(const HelrConfig& cfg = {});

} // namespace apps
} // namespace madfhe

#endif // MADFHE_APPS_HELR_H
