/**
 * @file
 * EncryptedLrTrainer: functional logistic-regression training on
 * encrypted data (the HELR workload, miniature). One sample per slot,
 * features packed column-wise into one ciphertext each; gradients via
 * ciphertext products and rotate-and-add reductions; degree-3 polynomial
 * sigmoid. A plaintext reference trainer with the identical update rule
 * is provided for validation.
 */
#ifndef MADFHE_APPS_LR_H
#define MADFHE_APPS_LR_H

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "graph/passes.h"

namespace madfhe {

class EvalBackend;

namespace apps {

struct LrConfig
{
    size_t features = 4;
    double learning_rate = 1.0;
    size_t iterations = 2;
};

/** Column-major plaintext dataset: one sample per slot position. */
struct LrDataset
{
    /** features[j][i] = feature j of sample i. */
    std::vector<std::vector<double>> features;
    /** Labels in {0, 1}. */
    std::vector<double> labels;

    size_t sampleCount() const { return labels.size(); }

    /** Synthetic two-Gaussian binary classification data. */
    static LrDataset twoGaussians(size_t samples, size_t features,
                                  u64 seed);
};

/** Decrypted model weights. */
struct LrModel
{
    std::vector<double> weights;

    /** Linear score w . x for one sample of the dataset. */
    double score(const LrDataset& data, size_t sample) const;
    /** 0/1 classification accuracy over a dataset. */
    double accuracy(const LrDataset& data) const;
};

/** The degree-3 sigmoid approximation used on both sides. */
double sigmoidApprox(double z);

class EncryptedLrTrainer
{
  public:
    EncryptedLrTrainer(std::shared_ptr<const CkksContext> ctx,
                       LrConfig config);

    const LrConfig& config() const { return cfg; }

    /** Rotation steps train() needs Galois keys for (the log2 reduction
     *  tree). */
    std::vector<int> requiredRotations() const;

    /** Multiplicative levels one iteration consumes. */
    size_t levelsPerIteration() const { return 5; }

    /** Encrypt a dataset column-wise at the top level. */
    std::vector<Ciphertext> encryptFeatures(const CkksEncoder& encoder,
                                            Encryptor& encryptor,
                                            const LrDataset& data) const;
    Ciphertext encryptLabels(const CkksEncoder& encoder,
                             Encryptor& encryptor,
                             const LrDataset& data) const;

    /**
     * Run `cfg.iterations` gradient-descent steps entirely on encrypted
     * data. Returns one (slot-broadcast) weight ciphertext per feature.
     */
    std::vector<Ciphertext> train(const Evaluator& eval,
                                  const CkksEncoder& encoder,
                                  Encryptor& encryptor,
                                  const std::vector<Ciphertext>& features,
                                  const Ciphertext& labels,
                                  const SwitchingKey& rlk,
                                  const GaloisKeys& gks) const;

    /** Fresh zero-weight ciphertexts — the train() starting point,
     *  exposed so graph and imperative runs can share one encryption. */
    std::vector<Ciphertext> initialWeights(const CkksEncoder& encoder,
                                           Encryptor& encryptor) const;

    /** train() from caller-provided initial weights (the Encryptor
     *  overload above delegates here via initialWeights). */
    std::vector<Ciphertext> train(const Evaluator& eval,
                                  const CkksEncoder& encoder,
                                  const std::vector<Ciphertext>& weights0,
                                  const std::vector<Ciphertext>& features,
                                  const Ciphertext& labels,
                                  const SwitchingKey& rlk,
                                  const GaloisKeys& gks) const;

    /**
     * The train() schedule as an evaluation graph, built from raw ops
     * (no manual dropToLevel: the align pass reproduces them). Inputs,
     * in run() binding order: weights[0..features), x[0..features),
     * labels. Outputs: the updated weights.
     */
    graph::Graph buildTrainGraph() const;

    /**
     * train() through the graph IR: build, run the pass pipeline,
     * execute over `backend`. On the real backend with default passes
     * this is byte-identical to the imperative train().
     */
    std::vector<Ciphertext> trainGraph(const EvalBackend& backend,
                                       const std::vector<Ciphertext>& weights0,
                                       const std::vector<Ciphertext>& features,
                                       const Ciphertext& labels,
                                       const SwitchingKey& rlk,
                                       const GaloisKeys& gks,
                                       const graph::PassOptions& popts = {},
                                       graph::PassStats* stats = nullptr) const;

    /** Decrypt the trained weights (first slot of each ciphertext). */
    LrModel decryptModel(const CkksEncoder& encoder, Decryptor& decryptor,
                         const std::vector<Ciphertext>& weights) const;

    /** Plaintext training with the identical schedule/update rule. */
    LrModel trainPlain(const LrDataset& data) const;

  private:
    Ciphertext slotSum(const Evaluator& eval, Ciphertext ct,
                       const GaloisKeys& gks) const;

    std::shared_ptr<const CkksContext> ctx;
    LrConfig cfg;
};

} // namespace apps
} // namespace madfhe

#endif // MADFHE_APPS_LR_H
