/**
 * @file
 * Shared kernel-microbenchmark harness used by bench/kernels_wallclock
 * (the full thread-sweep artifact) and tools/perf_gate (the regression
 * gate). Both measure the same five hot kernels — forward NTT over all
 * limbs, fast basis extension, KeySwitch, Mult, Rotate — at the same
 * parameter set, so a gate failure points at the same numbers the
 * artifact records.
 */
#ifndef MADFHE_BENCH_KERNELS_COMMON_H
#define MADFHE_BENCH_KERNELS_COMMON_H

#include <chrono>
#include <complex>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keyswitch.h"
#include "rns/basis.h"
#include "rns/primegen.h"
#include "rns/simd/simd.h"
#include "support/parallel.h"
#include "support/random.h"

namespace madfhe {
namespace benchkit {

using Clock = std::chrono::steady_clock;

constexpr size_t kLogN = 13;

/**
 * Time `op` adaptively: at least `min_iters` iterations and `target_ns`
 * of sampling overall, split into `reps` repetitions; returns the
 * fastest repetition's ns/op. Min-of-reps makes the number robust to
 * transient machine load — interference only ever inflates a timing —
 * which is what lets perf_gate hold a 15% threshold on short samples.
 */
template <typename Op>
inline double
nsPerOp(Op&& op, size_t min_iters, double target_ns = 200e6, size_t reps = 3)
{
    op(); // warm-up (touches pages, fills the NTT table cache)
    const size_t rep_min_iters = (min_iters + reps - 1) / reps;
    const double rep_target_ns = target_ns / static_cast<double>(reps);
    double best = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
        size_t iters = 0;
        double elapsed_ns = 0;
        while (iters < rep_min_iters || elapsed_ns < rep_target_ns) {
            auto t0 = Clock::now();
            op();
            auto t1 = Clock::now();
            elapsed_ns +=
                std::chrono::duration<double, std::nano>(t1 - t0).count();
            ++iters;
            if (iters >= 4096)
                break;
        }
        const double avg = elapsed_ns / static_cast<double>(iters);
        if (rep == 0 || avg < best)
            best = avg;
    }
    return best;
}

struct KernelResult
{
    std::string op;
    size_t threads;
    double ns_per_op;
    /** SIMD backend active when the row was measured. */
    std::string backend;
};

/**
 * Machine-speed reference: one serial scalar Shoup-multiply pass over a
 * fixed 4096-element array. Deliberately independent of the SIMD
 * backend and the thread pool, so the ratio of a re-measured reference
 * to the baseline's recorded `reference_ns` is a pure machine-speed
 * factor — perf_gate uses it to rescale checked-in baselines to the
 * host it runs on instead of comparing absolute ns across machines.
 */
inline double
referenceKernelNs()
{
    constexpr size_t kRefN = 4096;
    static const u64 prime = generateNttPrimes(50, kRefN, 1)[0];
    const Modulus q(prime);
    std::vector<u64> a(kRefN);
    Prng rng(42);
    for (auto& x : a)
        x = rng.uniform(q.value());
    const u64 w = q.reduce(0x9e3779b97f4a7c15ULL);
    const u64 ws = q.shoupPrecompute(w);
    volatile u64 sink = 0;
    return nsPerOp(
        [&] {
            for (size_t i = 0; i < kRefN; ++i)
                a[i] = q.mulShoup(a[i], w, ws);
            sink = sink + a[0];
        },
        256, 20e6);
}

inline CkksParams
benchParams()
{
    CkksParams p;
    p.log_n = kLogN;
    p.log_scale = 40;
    p.first_prime_bits = 45;
    p.num_levels = 5;
    p.dnum = 3;
    return p;
}

inline RnsPoly
randomPoly(const std::shared_ptr<const RingContext>& ring, size_t limbs,
           u64 seed)
{
    RnsPoly p(ring, ring->qIndices(limbs), Rep::Coeff);
    Prng rng(seed);
    for (size_t i = 0; i < p.numLimbs(); ++i) {
        u64* a = p.limb(i);
        for (size_t c = 0; c < p.degree(); ++c)
            a[c] = rng.uniform(p.modulus(i).value());
    }
    return p;
}

/** The benchmarked stack: context, keys, and pre-built operands. */
struct KernelBench
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    SecretKey sk;
    SwitchingKey rlk;
    GaloisKeys gks;
    std::unique_ptr<Encryptor> encryptor;
    std::unique_ptr<Evaluator> eval;
    std::unique_ptr<KeySwitcher> ksw;

    std::unique_ptr<BasisConverter> conv;
    RnsPoly conv_in;
    std::vector<const u64*> conv_src;
    std::vector<std::vector<u64>> conv_out;
    std::vector<u64*> conv_dst;

    Ciphertext ct_a;
    Ciphertext ct_b;

    KernelBench() : KernelBench(benchParams()) {}

    explicit KernelBench(const CkksParams& params)
    {
        ctx = std::make_shared<CkksContext>(params);
        encoder = std::make_unique<CkksEncoder>(ctx);
        KeyGenerator keygen(ctx);
        sk = keygen.secretKey();
        PublicKey pk = keygen.publicKey(sk);
        rlk = keygen.relinKey(sk);
        gks = keygen.galoisKeys(sk, {1});
        encryptor = std::make_unique<Encryptor>(ctx, pk);
        eval = std::make_unique<Evaluator>(ctx);
        ksw = std::make_unique<KeySwitcher>(ctx);

        const size_t n = ctx->degree();
        const size_t level = ctx->maxLevel();

        // Basis-extension operands: full Q chain -> the P primes.
        RnsBasis from = ctx->ring()->basisOf(ctx->ring()->qIndices(level));
        RnsBasis to = ctx->ring()->basisOf(ctx->ring()->pIndices());
        conv = std::make_unique<BasisConverter>(from, to);
        conv_in = randomPoly(ctx->ring(), level, 11);
        for (size_t i = 0; i < level; ++i)
            conv_src.push_back(conv_in.limb(i));
        conv_out.assign(to.size(), std::vector<u64>(n));
        for (auto& limb : conv_out)
            conv_dst.push_back(limb.data());

        auto slots = std::vector<std::complex<double>>(ctx->slots());
        Prng srng(7);
        for (auto& z : slots)
            z = {2.0 * srng.uniformReal() - 1.0,
                 2.0 * srng.uniformReal() - 1.0};
        Plaintext pt = encoder->encode(slots, ctx->scale(), level);
        ct_a = encryptor->encrypt(pt);
        ct_b = encryptor->encrypt(pt);
    }

    /**
     * Measure every kernel once per entry of `thread_sweep`. Restores
     * the default global pool size before returning.
     */
    std::vector<KernelResult>
    run(const std::vector<size_t>& thread_sweep, double target_ns = 200e6)
    {
        const size_t n = ctx->degree();
        const size_t level = ctx->maxLevel();
        const std::string be = simd::activeName();
        std::vector<KernelResult> results;
        for (size_t threads : thread_sweep) {
            ThreadPool::setGlobalThreads(threads);

            // toEval/toCoeff form a symmetric pair with the same
            // butterfly count per direction, so timing the pair and
            // halving isolates one transform without an untimed state
            // reset.
            RnsPoly ntt_poly = randomPoly(ctx->ring(), level, 13);
            results.push_back({"ntt_forward", threads,
                               nsPerOp(
                                   [&] {
                                       ntt_poly.toEval();
                                       ntt_poly.toCoeff();
                                   },
                                   8, target_ns) /
                                   2.0,
                               be});

            results.push_back(
                {"basis_extension", threads,
                 nsPerOp([&] { conv->convert(conv_src, n, conv_dst); }, 8,
                         target_ns),
                 be});

            results.push_back({"keyswitch", threads,
                               nsPerOp(
                                   [&] {
                                       auto r = ksw->keySwitch(ct_a.c1, rlk);
                                       (void)r;
                                   },
                                   4, target_ns),
                               be});

            results.push_back({"mult", threads,
                               nsPerOp(
                                   [&] {
                                       Ciphertext c =
                                           eval->mul(ct_a, ct_b, rlk);
                                       (void)c;
                                   },
                                   4, target_ns),
                               be});

            results.push_back({"rotate", threads,
                               nsPerOp(
                                   [&] {
                                       Ciphertext c =
                                           eval->rotate(ct_a, 1, gks);
                                       (void)c;
                                   },
                                   4, target_ns),
                               be});
        }
        ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
        return results;
    }
};

/** The kernel names run(), in measurement order. */
inline const std::vector<std::string>&
kernelNames()
{
    static const std::vector<std::string> names = {
        "ntt_forward", "basis_extension", "keyswitch", "mult", "rotate"};
    return names;
}

/**
 * Write the BENCH_kernels.json artifact. `reference_ns` (from
 * referenceKernelNs()) records the host's machine-speed reference so a
 * later perf_gate run on different hardware can rescale these numbers;
 * 0 omits the field. Returns false on I/O error.
 */
inline bool
writeKernelsJson(const char* path, const CkksParams& params,
                 const CkksContext& ctx,
                 const std::vector<KernelResult>& results,
                 double reference_ns = 0)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"kernels_wallclock\",\n");
    std::fprintf(f,
                 "  \"params\": {\"log_n\": %zu, \"q_limbs\": %zu, "
                 "\"p_limbs\": %zu, \"dnum\": %zu},\n",
                 static_cast<size_t>(params.log_n), ctx.maxLevel(),
                 ctx.ring()->numP(), params.dnum);
    std::fprintf(f, "  \"host\": {\"hardware_concurrency\": %u},\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"simd_backend\": \"%s\",\n", simd::activeName());
    if (reference_ns > 0)
        std::fprintf(f, "  \"reference_ns\": %.1f,\n", reference_ns);
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f,
                     "    {\"op\": \"%s\", \"threads\": %zu, \"ns_per_op\": "
                     "%.0f, \"backend\": \"%s\"}%s\n",
                     results[i].op.c_str(), results[i].threads,
                     results[i].ns_per_op, results[i].backend.c_str(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Speedups vs the 1-thread row of the same op.
    std::fprintf(f, "  \"speedup_vs_1_thread\": {\n");
    const auto& ops = kernelNames();
    for (size_t o = 0; o < ops.size(); ++o) {
        double base = 0;
        for (const auto& r : results)
            if (r.op == ops[o] && r.threads == 1)
                base = r.ns_per_op;
        std::fprintf(f, "    \"%s\": {", ops[o].c_str());
        bool first = true;
        for (const auto& r : results) {
            if (r.op != ops[o] || r.threads == 1 || base <= 0)
                continue;
            std::fprintf(f, "%s\"%zu\": %.2f", first ? "" : ", ", r.threads,
                         base / r.ns_per_op);
            first = false;
        }
        std::fprintf(f, "}%s\n", o + 1 < ops.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    return true;
}

} // namespace benchkit
} // namespace madfhe

#endif // MADFHE_BENCH_KERNELS_COMMON_H
