/**
 * @file
 * E4 — reproduces Table 5: brute-force search for the bootstrapping
 * parameters that maximize the Equation-3 throughput with a 32 MB
 * on-chip memory, all MAD optimizations enabled.
 */
#include <cstdio>

#include "simfhe/report.h"
#include "simfhe/search.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Table 5: optimal bootstrapping parameters "
                "(32 MB on-chip memory) ===\n\n");

    SearchSpace space;
    space.min_limb_bits = 40;
    space.max_limb_bits = 60;
    space.min_limbs = 26;
    space.max_limbs = 46;
    space.dnums = {1, 2, 3, 4, 5};
    space.fft_iters = {2, 3, 4, 5, 6, 7, 8};

    HardwareDesign hw = HardwareDesign::gpu().withCache(32);
    auto results = searchParameters(space, hw, 8);

    Table t({"rank", "n", "q", "L", "dnum", "fftIter", "logQ1",
             "runtime ms", "throughput", "bound"});
    int rank = 1;
    for (const auto& r : results) {
        t.addRow({std::to_string(rank++),
                  "2^" + std::to_string(r.config.log_n - 1),
                  std::to_string(r.config.limb_bits),
                  std::to_string(r.config.boot_limbs),
                  std::to_string(r.config.dnum),
                  std::to_string(r.config.fft_iter),
                  fmt(r.config.logQ1(), 0), fmt(r.runtime_sec * 1e3, 2),
                  fmt(r.throughput, 0),
                  r.memory_bound ? "memory" : "compute"});
    }
    t.print();

    std::printf("\nPaper Table 5 reference rows:\n");
    std::printf("  Baseline [Jung et al.]: n=2^16  q=54  L=35  dnum=3  "
                "fftIter=3\n");
    std::printf("  Ours (MAD optimal):     n=2^16  q=50  L=40  dnum=2  "
                "fftIter=6\n");

    // Evaluate both reference rows under the same model for comparison.
    for (auto cfg : {SchemeConfig::baselineJung(),
                     SchemeConfig::madOptimal()}) {
        CostModel m(cfg, CacheConfig::megabytes(32), Optimizations::all());
        double rt = runtimeSec(hw, m.bootstrap());
        std::printf("  q=%u L=%zu dnum=%zu fftIter=%zu -> %.2f ms, "
                    "throughput %.0f\n",
                    cfg.limb_bits, cfg.boot_limbs, cfg.dnum, cfg.fft_iter,
                    rt * 1e3, bootstrapThroughput(cfg, rt));
    }
    return 0;
}
