/**
 * @file
 * E3 — reproduces Figure 3: cumulative impact of the MAD algorithmic
 * optimizations (ModDown merge, ModDown hoisting, key compression) on
 * bootstrapping compute and DRAM. Baseline = all caching optimizations at
 * the best-case (Table 5 "Ours") parameters with a 32 MB cache.
 */
#include <cstdio>

#include "simfhe/model.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Figure 3: cumulative algorithmic optimizations "
                "(best-case parameters, 32 MB cache) ===\n\n");

    SchemeConfig s = SchemeConfig::madOptimal();
    CacheConfig c32 = CacheConfig::megabytes(32);

    struct Step
    {
        const char* name;
        Optimizations opts;
    };
    const Step steps[] = {
        {"Caching opts only", Optimizations::allCaching()},
        {"+ ModDown merge", Optimizations::withMerge()},
        {"+ ModDown hoisting", Optimizations::withHoist()},
        {"+ Key compression", Optimizations::all()},
    };

    Cost base = CostModel(s, c32, steps[0].opts).bootstrap();

    Table t({"Configuration", "Gops", "d comp", "DRAM GB", "ct GB",
             "key GB", "pt GB", "AI"});
    Cost prev = base;
    for (const auto& st : steps) {
        CostModel m(s, c32, st.opts);
        Cost c = m.bootstrap();
        double dcomp = 1.0 - c.ops() / prev.ops();
        t.addRow({st.name, fmtGiga(c.ops(), 1), fmtPercent(dcomp),
                  fmtGiga(c.bytes(), 1), fmtGiga(c.ct_read + c.ct_write, 1),
                  fmtGiga(c.key_read, 1), fmtGiga(c.pt_read, 1),
                  fmt(c.intensity(), 2)});
        prev = c;
    }
    t.print();

    std::printf("\nPaper reference: merge -6%% compute (DRAM unchanged); "
                "hoisting -34%% compute, -19%% ct DRAM, +25%% key reads; "
                "key compression -50%% key reads.\n");

    // Headline claim: 3x AI vs the Table 4 baseline.
    Cost table4_base = CostModel(SchemeConfig::baselineJung(),
                                 CacheConfig::megabytes(2),
                                 Optimizations::none()).bootstrap();
    Cost full = CostModel(s, c32, Optimizations::all()).bootstrap();
    std::printf("Bootstrap AI: baseline %.2f -> fully optimized %.2f "
                "(%.1fx; paper claims 3x)\n",
                table4_base.intensity(), full.intensity(),
                full.intensity() / table4_base.intensity());
    return 0;
}
