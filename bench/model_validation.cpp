/**
 * @file
 * E12 — grounding SimFHE in the functional library: run the real CKKS
 * primitives at N = 2^12 and compare their measured wall-time ratios
 * against the SimFHE op-count ratios at the matching configuration. The
 * analytical model and the real implementation should order the
 * operations identically and agree on relative magnitudes within a small
 * factor (they count the same arithmetic).
 */
#include <chrono>
#include <cstdio>
#include <functional>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "simfhe/model.h"
#include "simfhe/report.h"
#include "support/random.h"

using namespace madfhe;

namespace {

double
timeIt(const std::function<void()>& fn, int reps = 5)
{
    using namespace std::chrono;
    // One warmup.
    fn();
    auto t0 = steady_clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    return duration<double>(steady_clock::now() - t0).count() /
           static_cast<double>(reps);
}

} // namespace

int
main()
{
    std::printf("=== SimFHE vs functional library (N = 2^12, 9 limbs, "
                "dnum = 3) ===\n\n");

    CkksParams p = CkksParams::medium(); // log_n = 12, 9 limbs, dnum = 3
    auto ctx = std::make_shared<CkksContext>(p);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, {1});
    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Evaluator eval(ctx);

    Prng rng(5);
    std::vector<std::complex<double>> v(ctx->slots());
    for (auto& z : v)
        z = {rng.uniformReal(), rng.uniformReal()};
    Plaintext pt = encoder.encode(v, ctx->scale(), ctx->maxLevel());
    Ciphertext a = encryptor.encrypt(pt);
    Ciphertext b = encryptor.encrypt(pt);

    // Matching SimFHE configuration (same ring degree, chain, dnum).
    simfhe::SchemeConfig s;
    s.log_n = p.log_n;
    s.limb_bits = p.log_scale;
    s.boot_limbs = p.chainLength();
    s.dnum = p.dnum;
    // A large cache relative to these toy limbs: the functional library
    // runs entirely in L2/L3, so compare against the cached model.
    simfhe::CostModel model(s, simfhe::CacheConfig::megabytes(32),
                            simfhe::Optimizations::all());
    const size_t l = p.chainLength();

    struct Row
    {
        const char* name;
        double measured_s;
        double model_ops;
    };
    const Row rows[] = {
        {"Add", timeIt([&] { auto c = eval.add(a, b); }),
         model.add(l).ops()},
        {"PtMult+Rescale", timeIt([&] {
             auto c = eval.mulPlainRescale(a, pt);
         }),
         model.ptMult(l).ops()},
        {"Mult", timeIt([&] { auto c = eval.mul(a, b, rlk); }),
         model.mult(l).ops()},
        {"Rotate", timeIt([&] { auto c = eval.rotate(a, 1, gks); }),
         model.rotate(l).ops()},
    };

    // Normalize both columns by the Mult row.
    const double t_ref = rows[2].measured_s;
    const double o_ref = rows[2].model_ops;

    simfhe::Table t({"Operation", "measured ms", "model Gops",
                     "measured/Mult", "model/Mult", "agreement"});
    bool all_ok = true;
    for (const auto& r : rows) {
        double mr = r.measured_s / t_ref;
        double orat = r.model_ops / o_ref;
        double agreement = mr > orat ? mr / orat : orat / mr;
        // Tiny ops (Add) are memory/latency dominated in practice; allow
        // a wide band there, tight elsewhere.
        bool ok = agreement < (r.model_ops / o_ref < 0.05 ? 30.0 : 3.0);
        all_ok = all_ok && ok;
        t.addRow({r.name, simfhe::fmt(r.measured_s * 1e3, 3),
                  simfhe::fmtGiga(r.model_ops, 4), simfhe::fmt(mr, 4),
                  simfhe::fmt(orat, 4),
                  simfhe::fmt(agreement, 2) + (ok ? "x OK" : "x OFF")});
    }
    t.print();

    std::printf("\nThe model's compute ratios track the implementation: "
                "Rotate ~ Mult (both are one key switch), PtMult ~15%% "
                "of Mult, Add negligible. %s\n",
                all_ok ? "VALIDATED" : "DISAGREEMENT — investigate");
    return all_ok ? 0 : 1;
}
