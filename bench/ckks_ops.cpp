/**
 * @file
 * E9b — google-benchmark suite for the CKKS primitive operations of
 * Table 2 on the functional library (reduced ring degree): Add, PtMult,
 * Mult (merged vs unmerged ModDown), Rotate (plain vs hoisted), Rescale.
 */
#include <benchmark/benchmark.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "support/random.h"

namespace {

using namespace madfhe;

struct Fixture
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    SecretKey sk;
    SwitchingKey rlk;
    GaloisKeys gks;
    std::unique_ptr<Encryptor> enc;
    std::unique_ptr<Evaluator> eval;
    std::unique_ptr<Evaluator> eval_unmerged;
    Ciphertext ct_a, ct_b;
    Plaintext pt;

    Fixture()
    {
        CkksParams p = CkksParams::medium();
        ctx = std::make_shared<CkksContext>(p);
        encoder = std::make_unique<CkksEncoder>(ctx);
        KeyGenerator keygen(ctx);
        sk = keygen.secretKey();
        PublicKey pk = keygen.publicKey(sk);
        rlk = keygen.relinKey(sk);
        gks = keygen.galoisKeys(sk, {1, 2, 4, 8});
        enc = std::make_unique<Encryptor>(ctx, pk);
        eval = std::make_unique<Evaluator>(ctx);
        eval_unmerged = std::make_unique<Evaluator>(
            ctx, EvalOptions{.merged_moddown = false});

        Prng rng(7);
        std::vector<std::complex<double>> v(ctx->slots());
        for (auto& z : v)
            z = {rng.uniformReal(), rng.uniformReal()};
        pt = encoder->encode(v, ctx->scale(), ctx->maxLevel());
        ct_a = enc->encrypt(pt);
        ct_b = enc->encrypt(pt);
    }

    static Fixture&
    get()
    {
        static Fixture f;
        return f;
    }
};

void
BM_CkksAdd(benchmark::State& state)
{
    auto& f = Fixture::get();
    for (auto _ : state) {
        auto c = f.eval->add(f.ct_a, f.ct_b);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksAdd);

void
BM_CkksPtMultRescale(benchmark::State& state)
{
    auto& f = Fixture::get();
    for (auto _ : state) {
        auto c = f.eval->mulPlainRescale(f.ct_a, f.pt);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksPtMultRescale);

void
BM_CkksMultMergedModDown(benchmark::State& state)
{
    auto& f = Fixture::get();
    for (auto _ : state) {
        auto c = f.eval->mul(f.ct_a, f.ct_b, f.rlk);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksMultMergedModDown);

void
BM_CkksMultUnmerged(benchmark::State& state)
{
    auto& f = Fixture::get();
    for (auto _ : state) {
        auto c = f.eval_unmerged->mul(f.ct_a, f.ct_b, f.rlk);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksMultUnmerged);

void
BM_CkksRotate(benchmark::State& state)
{
    auto& f = Fixture::get();
    for (auto _ : state) {
        auto c = f.eval->rotate(f.ct_a, 2, f.gks);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksRotate);

void
BM_CkksRotateHoisted4(benchmark::State& state)
{
    // Four rotations sharing one Decomp+ModUp — compare against 4x
    // BM_CkksRotate to see the hoisting gain.
    auto& f = Fixture::get();
    std::vector<int> steps = {1, 2, 4, 8};
    for (auto _ : state) {
        auto cs = f.eval->rotateHoisted(f.ct_a, steps, f.gks);
        benchmark::DoNotOptimize(cs);
    }
}
BENCHMARK(BM_CkksRotateHoisted4);

void
BM_CkksRescale(benchmark::State& state)
{
    auto& f = Fixture::get();
    auto prod = f.eval->mulPlain(f.ct_a, f.pt);
    for (auto _ : state) {
        auto c = f.eval->rescale(prod);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksRescale);

void
BM_CkksEncode(benchmark::State& state)
{
    auto& f = Fixture::get();
    Prng rng(9);
    std::vector<std::complex<double>> v(f.ctx->slots());
    for (auto& z : v)
        z = {rng.uniformReal(), rng.uniformReal()};
    for (auto _ : state) {
        auto p = f.encoder->encode(v, f.ctx->scale(), 4);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_CkksEncode);

void
BM_CkksEncrypt(benchmark::State& state)
{
    auto& f = Fixture::get();
    for (auto _ : state) {
        auto c = f.enc->encrypt(f.pt);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CkksEncrypt);

} // namespace

BENCHMARK_MAIN();
