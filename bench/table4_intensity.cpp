/**
 * @file
 * E1 — reproduces Table 4: total operations (Gops), DRAM transfers (GB)
 * and arithmetic intensity (ops/byte) for every CKKS primitive and for
 * bootstrapping, at the paper's parameters (log N = 17, l = 35, dnum = 3,
 * cache of a couple of limbs).
 */
#include <cstdio>

#include "simfhe/hardware.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Table 4: ops, DRAM transfers, arithmetic intensity "
                "(logN=17, l=35, dnum=3) ===\n\n");

    SchemeConfig s = SchemeConfig::baselineJung();
    CostModel m(s, CacheConfig::megabytes(2), Optimizations::none());
    const size_t l = 35;

    struct Row
    {
        const char* name;
        Cost cost;
        double paper_ops, paper_gb, paper_ai;
    };
    const Row rows[] = {
        {"PtAdd", m.ptAdd(l), 0.0046, 0.1101, 0.04},
        {"Add", m.add(l), 0.0092, 0.2202, 0.04},
        {"PtMult", m.ptMult(l), 0.2747, 0.3282, 0.84},
        {"Decomp", m.decomp(l), 0.0092, 0.0734, 0.12},
        {"ModUp", m.modUpDigit(l), 0.2847, 0.1510, 1.88},
        {"KSKInnerProd", m.kskInnerProd(l), 0.0629, 0.4530, 0.13},
        {"ModDown", m.modDownPoly(l), 0.3000, 0.1877, 1.59},
        {"Mult", m.mult(l), 1.8333, 1.9293, 0.95},
        {"Automorph", m.automorph(l), 0.0, 0.1468, 0.0},
        {"Rotate", m.rotate(l), 1.5310, 1.5645, 0.98},
        {"Conjugate", m.conjugate(l), 1.5310, 1.5645, 0.98},
        {"Bootstrap", m.bootstrap(), 149.546, 207.982, 0.72},
    };

    Table t({"Operation", "Gops", "DRAM GB", "AI", "paper Gops",
             "paper GB", "paper AI"});
    for (const auto& r : rows) {
        t.addRow({r.name, fmtGiga(r.cost.ops(), 4), fmtGiga(r.cost.bytes(), 4),
                  fmt(r.cost.intensity(), 2), fmt(r.paper_ops, 4),
                  fmt(r.paper_gb, 4), fmt(r.paper_ai, 2)});
    }
    t.print();

    std::printf("\nEvery primitive is memory bound (AI < 1 op/byte) at "
                "small cache sizes, matching the paper's Section 2.3 "
                "observation.\n");
    return 0;
}
