/**
 * @file
 * E10 — the Section 4.4 performance-vs-area/cost tradeoff: compare each
 * ASIC design at its original on-chip memory against the same compute
 * fabric with a 32 MB cache and MAD optimizations. MAD shrinks SRAM 8-16x;
 * even where raw bootstrap throughput drops, throughput per mm^2 (and per
 * cost unit) improves.
 */
#include <cstdio>

#include "simfhe/area.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Section 4.4: performance vs area / cost ===\n\n");

    AreaModel area;
    SchemeConfig mad_cfg = SchemeConfig::madOptimal();
    SchemeConfig base_cfg = SchemeConfig::baselineJung();

    Table t({"Design", "cache MB", "area mm2", "rel cost", "tput",
             "tput/mm2", "tput/cost"});
    for (const auto& hw : {HardwareDesign::bts(), HardwareDesign::ark(),
                           HardwareDesign::craterlake()}) {
        // Original configuration, modeled without MAD optimizations.
        {
            CostModel m(base_cfg, CacheConfig::megabytes(hw.onchip_mb),
                        Optimizations::none());
            Cost c = m.bootstrap();
            double a = area.chipAreaMm2(hw.modmult_count, hw.onchip_mb);
            double cost = area.relativeCost(a);
            double rt = runtimeSec(hw, c);
            double tput = bootstrapThroughput(base_cfg, rt);
            t.addRow({hw.name, fmt(hw.onchip_mb, 0), fmt(a, 1),
                      fmt(cost / 1000, 1), fmt(tput, 0), fmt(tput / a, 2),
                      fmt(1000 * tput / cost, 2)});
        }
        // Same compute fabric, 32 MB cache, MAD optimizations.
        {
            HardwareDesign small = hw.withCache(32);
            CostModel m(mad_cfg, CacheConfig::megabytes(32),
                        Optimizations::all());
            Cost c = m.bootstrap();
            double a = area.chipAreaMm2(small.modmult_count, 32);
            double cost = area.relativeCost(a);
            double rt = runtimeSec(small, c);
            double tput = bootstrapThroughput(mad_cfg, rt);
            t.addRow({hw.name + "+MAD", "32", fmt(a, 1),
                      fmt(cost / 1000, 1), fmt(tput, 0), fmt(tput / a, 2),
                      fmt(1000 * tput / cost, 2)});
        }
    }
    t.print();

    std::printf("\nThe MAD design points dominate on throughput per mm^2 "
                "and per cost unit: a 512 MB SRAM macro is most of a "
                "reticle-class die, and MAD removes 8-16x of it for a "
                "bounded (or negative) throughput delta.\n");
    return 0;
}
