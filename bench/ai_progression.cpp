/**
 * @file
 * E8 — the arithmetic-intensity progression headline: bootstrap AI from
 * the naive baseline through all caching optimizations (Section 3.1:
 * 0.72 -> 1.25) to the fully optimized configuration (Section 3.2: 3x),
 * plus an AI-vs-cache-size sweep showing where each optimization becomes
 * feasible.
 */
#include <cstdio>

#include "simfhe/model.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Arithmetic-intensity progression ===\n\n");

    SchemeConfig base_cfg = SchemeConfig::baselineJung();
    SchemeConfig mad_cfg = SchemeConfig::madOptimal();

    struct Step
    {
        const char* name;
        SchemeConfig cfg;
        Optimizations opts;
        double cache_mb;
    };
    const Step steps[] = {
        {"baseline (Table 4)", base_cfg, Optimizations::none(), 2},
        {"+ all caching opts", base_cfg, Optimizations::allCaching(), 32},
        {"+ ModDown merge", mad_cfg, Optimizations::withMerge(), 32},
        {"+ ModDown hoist", mad_cfg, Optimizations::withHoist(), 32},
        {"+ key compression", mad_cfg, Optimizations::all(), 32},
    };

    Cost base = CostModel(base_cfg, CacheConfig::megabytes(2),
                          Optimizations::none()).bootstrap();

    Table t({"Stage", "Gops", "GB", "AI", "AI vs baseline"});
    for (const auto& st : steps) {
        Cost c = CostModel(st.cfg, CacheConfig::megabytes(st.cache_mb),
                           st.opts).bootstrap();
        t.addRow({st.name, fmtGiga(c.ops(), 1), fmtGiga(c.bytes(), 1),
                  fmt(c.intensity(), 2),
                  fmt(c.intensity() / base.intensity(), 2) + "x"});
    }
    t.print();
    std::printf("\nPaper: caching lifts AI ~1.7x; the full MAD stack "
                "lifts it ~3x.\n");

    std::printf("\n--- Bootstrap phase breakdown (fully optimized, "
                "32 MB) ---\n");
    {
        CostModel m(mad_cfg, CacheConfig::megabytes(32),
                    Optimizations::all());
        auto bd = m.bootstrapBreakdown();
        Cost total = bd.total();
        Table pt({"Phase", "Gops", "GB", "% ops", "% DRAM"});
        struct Row
        {
            const char* name;
            const Cost* c;
        };
        const Row rows[] = {{"ModRaise", &bd.mod_raise},
                            {"CoeffToSlot", &bd.coeff_to_slot},
                            {"EvalMod (+conj)", &bd.eval_mod},
                            {"SlotToCoeff", &bd.slot_to_coeff}};
        for (const auto& r : rows) {
            pt.addRow({r.name, fmtGiga(r.c->ops(), 1),
                       fmtGiga(r.c->bytes(), 1),
                       fmtPercent(r.c->ops() / total.ops()),
                       fmtPercent(r.c->bytes() / total.bytes())});
        }
        pt.print();
    }

    std::printf("\n--- Bootstrap AI vs on-chip memory (all opts "
                "requested; infeasible ones auto-disabled) ---\n");
    Table sweep({"cache MB", "effective opts", "DRAM GB", "AI"});
    for (double mb : {0.5, 1.0, 2.0, 6.0, 13.0, 16.0, 27.0, 32.0, 64.0,
                      256.0}) {
        CostModel m(base_cfg, CacheConfig::megabytes(mb),
                    Optimizations::allCaching());
        Cost c = m.bootstrap();
        sweep.addRow({fmt(mb, 1), m.effective().describe(),
                      fmtGiga(c.bytes(), 1), fmt(c.intensity(), 2)});
    }
    sweep.print();
    return 0;
}
