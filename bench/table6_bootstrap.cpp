/**
 * @file
 * E5 — reproduces Table 6: bootstrapping runtime and Equation-3
 * throughput of the five accelerator designs, original (published
 * numbers, quoted) vs. the same design with MAD optimizations and a
 * 32 MB on-chip memory (modeled).
 */
#include <cstdio>

#include "simfhe/hardware.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Table 6: bootstrapping comparison (original designs "
                "vs +MAD at 32 MB) ===\n\n");

    SchemeConfig mad_cfg = SchemeConfig::madOptimal();

    struct PaperMadRow
    {
        const char* design;
        double mad_ms;
        double mad_tput;
    };
    // The MAD rows as printed in the paper's Table 6.
    const PaperMadRow paper_rows[] = {
        {"GPU [Jung et al.]", 39.35, 3006},
        {"F1", 40.6, 2910},
        {"BTS", 76.2, 1552},
        {"ARK", 36.58, 3234},
        {"CraterLake", 52.2, 2263},
    };

    Table t({"Design", "orig MB", "orig ms", "orig tput", "MAD ms",
             "MAD tput", "paper MAD ms", "bound", "tput ratio"});
    auto designs = HardwareDesign::all();
    for (size_t i = 0; i < designs.size(); ++i) {
        const auto& hw = designs[i];
        HardwareDesign mad_hw = hw.withCache(32);
        CostModel m(mad_cfg, CacheConfig::megabytes(32),
                    Optimizations::all());
        Cost cost = m.bootstrap();
        double rt = runtimeSec(mad_hw, cost);
        double tput = bootstrapThroughput(mad_cfg, rt);
        t.addRow({hw.name, fmt(hw.onchip_mb, 0),
                  fmt(hw.published_boot_ms, 2),
                  fmt(hw.published_throughput, 0), fmt(rt * 1e3, 2),
                  fmt(tput, 0), fmt(paper_rows[i].mad_ms, 2),
                  memoryBound(mad_hw, cost) ? "memory" : "compute",
                  fmt(hw.published_throughput / tput, 3)});
    }
    t.print();

    std::printf("\nShape checks (Section 4.2):\n");
    {
        CostModel m(mad_cfg, CacheConfig::megabytes(32),
                    Optimizations::all());
        Cost cost = m.bootstrap();
        double gpu_mad =
            bootstrapThroughput(mad_cfg,
                runtimeSec(HardwareDesign::gpu().withCache(32), cost));
        std::printf("  GPU + MAD vs original GPU: %.1fx higher throughput "
                    "(paper: ~7x)\n",
                    gpu_mad / HardwareDesign::gpu().published_throughput);
        double f1_mad =
            bootstrapThroughput(mad_cfg,
                runtimeSec(HardwareDesign::f1().withCache(32), cost));
        std::printf("  F1 + MAD vs original F1 (unpacked): %.0fx "
                    "(paper: ~2000x)\n",
                    f1_mad / HardwareDesign::f1().published_throughput);
        for (auto hw : {HardwareDesign::bts(), HardwareDesign::ark(),
                        HardwareDesign::craterlake()}) {
            double mad_tp = bootstrapThroughput(
                mad_cfg, runtimeSec(hw.withCache(32), cost));
            std::printf("  %s original/MAD throughput ratio: %.2fx "
                        "(paper: %.2fx) — big-cache ASICs lose throughput "
                        "but shed %.0fx on-chip memory\n",
                        hw.name.c_str(),
                        hw.published_throughput / mad_tp,
                        hw.name == "BTS" ? 1.72
                        : hw.name == "ARK" ? 2.13 : 4.62,
                        hw.onchip_mb / 32.0);
        }
        // Cache saturation: growing the cache beyond 32 MB buys nothing.
        CostModel m512(mad_cfg, CacheConfig::megabytes(512),
                       Optimizations::all());
        double b32 = cost.bytes(), b512 = m512.bootstrap().bytes();
        std::printf("  DRAM at 512 MB vs 32 MB cache: %.3f (>= 0.99 means "
                    "no benefit beyond 32 MB, as the paper claims)\n",
                    b512 / b32);
    }
    return 0;
}
