/**
 * @file
 * E7 — reproduces Figure 6(f-h): ResNet-20 encrypted-inference time per
 * design (CraterLake, BTS, ARK), original vs +MAD at several cache
 * sizes, from the same mechanistic SimFHE model.
 */
#include <cstdio>

#include "apps/resnet.h"
#include "simfhe/hardware.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;
using madfhe::apps::resnetInferenceCost;

namespace {

double
inferSec(const HardwareDesign& hw, double cache_mb, const SchemeConfig& cfg,
         const Optimizations& opts)
{
    CostModel m(cfg, CacheConfig::megabytes(cache_mb), opts);
    return runtimeSec(hw.withCache(cache_mb), resnetInferenceCost(m));
}

} // namespace

int
main()
{
    std::printf("=== Figure 6(f-h): ResNet-20 encrypted inference time "
                "(CIFAR-10, one image) ===\n\n");

    SchemeConfig base_cfg = SchemeConfig::baselineJung();
    SchemeConfig mad_cfg = SchemeConfig::madOptimal();

    struct Sub
    {
        HardwareDesign hw;
        std::vector<double> mad_caches;
        const char* paper_claim;
    };
    const Sub subs[] = {
        {HardwareDesign::craterlake(), {32, 256},
         "paper: CL+MAD-32 8x, CL+MAD-256 13x faster"},
        {HardwareDesign::bts(), {32, 256, 512},
         "paper: BTS+MAD 21x / 36x / 57x faster"},
        {HardwareDesign::ark(), {32, 256, 512},
         "paper: ARK+MAD 1.3x / 2.2x / 3.6x faster"},
    };

    for (const auto& sub : subs) {
        double orig = inferSec(sub.hw, sub.hw.onchip_mb, base_cfg,
                               Optimizations::none());
        std::printf("--- %s ---\n", sub.hw.name.c_str());
        Table t({"Configuration", "time s", "speedup vs orig", "bound"});
        {
            CostModel m0(base_cfg, CacheConfig::megabytes(sub.hw.onchip_mb),
                         Optimizations::none());
            t.addRow({sub.hw.name + "-" + fmt(sub.hw.onchip_mb, 0),
                      fmt(orig, 2), "1.00x",
                      memoryBound(sub.hw, resnetInferenceCost(m0))
                          ? "memory" : "compute"});
        }
        for (double mb : sub.mad_caches) {
            double mad = inferSec(sub.hw, mb, mad_cfg, Optimizations::all());
            CostModel mm(mad_cfg, CacheConfig::megabytes(mb),
                         Optimizations::all());
            t.addRow({sub.hw.name + "+MAD-" + fmt(mb, 0), fmt(mad, 2),
                      fmt(orig / mad, 2) + "x",
                      memoryBound(sub.hw.withCache(mb),
                                  resnetInferenceCost(mm))
                          ? "memory" : "compute"});
        }
        t.print();
        std::printf("(%s)\n\n", sub.paper_claim);
    }

    // Anchored comparison (original bars from published bootstrap
    // runtimes, as the paper does).
    std::printf("--- Anchored to published bootstrap runtimes "
                "(original = published_boot * 19 / 0.8) ---\n");
    Table t({"Design", "orig s (anchored)", "+MAD-32 s", "MAD vs orig"});
    for (const auto& hw : {HardwareDesign::craterlake(),
                           HardwareDesign::bts(), HardwareDesign::ark()}) {
        double orig = hw.published_boot_ms * 1e-3 * 19.0 / 0.8;
        double mad = inferSec(hw, 32, mad_cfg, Optimizations::all());
        std::string ratio = orig > mad
            ? fmt(orig / mad, 2) + "x faster"
            : fmt(mad / orig, 2) + "x slower";
        t.addRow({hw.name, fmt(orig, 3), fmt(mad, 2), ratio});
    }
    t.print();

    // The 16x on-chip memory reduction headline.
    std::printf("\nOn-chip memory: 512 MB (BTS/ARK) -> 32 MB with MAD = "
                "16x reduction, as in the abstract.\n");
    return 0;
}
