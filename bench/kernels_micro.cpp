/**
 * @file
 * E9a — google-benchmark microbenchmarks for the RNS substrate kernels:
 * modular multiplication (Barrett vs Shoup), NTT/iNTT across ring
 * degrees, and fast basis extension. These are the kernels whose counts
 * SimFHE models; the microbenches ground the model in real cycle costs.
 */
#include <benchmark/benchmark.h>

#include "rns/basis.h"
#include "rns/ntt.h"
#include "rns/primegen.h"
#include "support/random.h"

namespace {

using namespace madfhe;

void
BM_MulModBarrett(benchmark::State& state)
{
    Modulus q(generateNttPrimes(54, 1 << 10, 1)[0]);
    Prng rng(1);
    u64 a = rng.uniform(q.value()), b = rng.uniform(q.value());
    for (auto _ : state) {
        a = q.mul(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulModBarrett);

void
BM_MulModShoup(benchmark::State& state)
{
    Modulus q(generateNttPrimes(54, 1 << 10, 1)[0]);
    Prng rng(2);
    u64 a = rng.uniform(q.value());
    u64 w = rng.uniform(q.value());
    u64 pre = q.shoupPrecompute(w);
    for (auto _ : state) {
        a = q.mulShoup(a, w, pre);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulModShoup);

void
BM_NttForward(benchmark::State& state)
{
    const size_t n = size_t(1) << state.range(0);
    Modulus q(generateNttPrimes(54, n, 1)[0]);
    NttTables ntt(n, q);
    Sampler s(3);
    auto a = s.uniformMod(n, q.value());
    for (auto _ : state) {
        ntt.forward(a.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)->Arg(10)->Arg(12)->Arg(13)->Arg(14);

void
BM_NttInverse(benchmark::State& state)
{
    const size_t n = size_t(1) << state.range(0);
    Modulus q(generateNttPrimes(54, n, 1)[0]);
    NttTables ntt(n, q);
    Sampler s(4);
    auto a = s.uniformMod(n, q.value());
    for (auto _ : state) {
        ntt.inverse(a.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttInverse)->Arg(10)->Arg(12)->Arg(14);

void
BM_BasisExtension(benchmark::State& state)
{
    const size_t n = 1 << 12;
    const size_t src_limbs = state.range(0);
    auto src_primes = generateNttPrimes(45, n, src_limbs);
    auto dst_primes = generateNttPrimes(46, n, 3, src_primes);
    std::vector<Modulus> src_mods, dst_mods;
    for (u64 p : src_primes)
        src_mods.emplace_back(p);
    for (u64 p : dst_primes)
        dst_mods.emplace_back(p);
    RnsBasis from(src_mods), to(dst_mods);
    BasisConverter conv(from, to);

    Sampler s(5);
    std::vector<std::vector<u64>> in;
    std::vector<const u64*> in_ptrs;
    for (size_t i = 0; i < src_limbs; ++i) {
        in.push_back(s.uniformMod(n, from[i].value()));
        in_ptrs.push_back(in.back().data());
    }
    std::vector<std::vector<u64>> out(3, std::vector<u64>(n));
    std::vector<u64*> out_ptrs;
    for (auto& limb : out)
        out_ptrs.push_back(limb.data());

    for (auto _ : state) {
        conv.convert(in_ptrs, n, out_ptrs);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * n * src_limbs);
}
BENCHMARK(BM_BasisExtension)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

} // namespace

BENCHMARK_MAIN();
