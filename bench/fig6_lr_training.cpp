/**
 * @file
 * E6 — reproduces Figure 6(a-e): HELR logistic-regression training time
 * per design, original configuration vs +MAD at several cache sizes. All
 * bars are produced by the same SimFHE model (original = no MAD
 * optimizations at the design's own cache size and parameters; +MAD =
 * all optimizations at the stated cache with the Table 5 optimal
 * parameters), so the ratios are mechanistic.
 */
#include <cstdio>

#include "apps/helr.h"
#include "simfhe/hardware.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;
using madfhe::apps::helrTrainingCost;

namespace {

double
trainSec(const HardwareDesign& hw, double cache_mb, const SchemeConfig& cfg,
         const Optimizations& opts)
{
    CostModel m(cfg, CacheConfig::megabytes(cache_mb), opts);
    return runtimeSec(hw.withCache(cache_mb), helrTrainingCost(m));
}

} // namespace

int
main()
{
    std::printf("=== Figure 6(a-e): HELR LR training time "
                "(30 iterations, bootstrap every 3) ===\n\n");

    SchemeConfig base_cfg = SchemeConfig::baselineJung();
    SchemeConfig mad_cfg = SchemeConfig::madOptimal();

    struct Sub
    {
        HardwareDesign hw;
        std::vector<double> mad_caches;
        const char* paper_claim;
    };
    const Sub subs[] = {
        {HardwareDesign::gpu(), {6, 32},
         "paper: GPU+MAD-6 3.5x, GPU+MAD-32 17x faster"},
        {HardwareDesign::f1(), {32, 64},
         "paper: F1+MAD-32 ~25x, F1+MAD-64 ~27x faster"},
        {HardwareDesign::craterlake(), {32, 256},
         "paper: CL+MAD 2.5x faster at both sizes (compute bound)"},
        {HardwareDesign::bts(), {32, 256, 512},
         "paper: BTS+MAD ~2x slower (becomes compute bound)"},
        {HardwareDesign::ark(), {32, 256, 512},
         "paper: ARK+MAD ~4x slower (becomes compute bound)"},
    };

    for (const auto& sub : subs) {
        double orig =
            trainSec(sub.hw, sub.hw.onchip_mb, base_cfg,
                     Optimizations::none());
        std::printf("--- %s ---\n", sub.hw.name.c_str());
        Table t({"Configuration", "time s", "speedup vs orig", "bound"});
        {
            CostModel m0(base_cfg, CacheConfig::megabytes(sub.hw.onchip_mb),
                         Optimizations::none());
            t.addRow({sub.hw.name + "-" + fmt(sub.hw.onchip_mb, 0),
                      fmt(orig, 2), "1.00x",
                      memoryBound(sub.hw, helrTrainingCost(m0)) ? "memory"
                                                                : "compute"});
        }
        for (double mb : sub.mad_caches) {
            double mad = trainSec(sub.hw, mb, mad_cfg, Optimizations::all());
            CostModel mm(mad_cfg, CacheConfig::megabytes(mb),
                         Optimizations::all());
            t.addRow({sub.hw.name + "+MAD-" + fmt(mb, 0), fmt(mad, 2),
                      fmt(orig / mad, 2) + "x",
                      memoryBound(sub.hw.withCache(mb), helrTrainingCost(mm))
                          ? "memory" : "compute"});
        }
        t.print();
        std::printf("(%s)\n\n", sub.paper_claim);
    }

    // Anchored comparison: like the paper, take the original bars from
    // the published bootstrap runtimes (bootstrapping dominates training,
    // Section 1: ~80%), and the +MAD bars from the model.
    std::printf("--- Anchored to published bootstrap runtimes "
                "(original = published_boot * #bootstraps / 0.8) ---\n");
    const size_t nboots = madfhe::apps::helrBootstrapCount({}) + 1;
    Table t({"Design", "orig s (anchored)", "+MAD-32 s", "MAD vs orig"});
    for (const auto& hw : HardwareDesign::all()) {
        double orig =
            hw.published_boot_ms * 1e-3 * static_cast<double>(nboots) / 0.8;
        double mad = trainSec(hw, 32, mad_cfg, Optimizations::all());
        std::string ratio = orig > mad
            ? fmt(orig / mad, 2) + "x faster"
            : fmt(mad / orig, 2) + "x slower";
        t.addRow({hw.name, fmt(orig, 3), fmt(mad, 2), ratio});
    }
    t.print();
    std::printf("(F1's published bootstrap is unpacked — 1 slot — so its "
                "anchored original is not load-equivalent; paper reports "
                "F1+MAD ~25-27x faster. Paper: GPU +3.5..17x, CL +2.5x, "
                "BTS -2x, ARK -4x.)\n");
    return 0;
}
