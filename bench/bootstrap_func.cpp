/**
 * @file
 * E9c — functional bootstrapping timing at toy parameters: one full
 * Algorithm-4 pipeline on the real CKKS library, with a phase breakdown
 * and precision report. Demonstrates end-to-end that the algorithms the
 * SimFHE model costs actually work.
 */
#include <chrono>
#include <cmath>
#include <cstdio>

#include "boot/bootstrapper.h"
#include "ckks/encryptor.h"
#include "support/random.h"

using namespace madfhe;

namespace {

double
nowSec()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
}

} // namespace

int
main()
{
    std::printf("=== Functional CKKS bootstrapping (toy parameters, "
                "N = 2^11) ===\n\n");

    CkksParams p = CkksParams::bootstrapToy();
    p.log_n = 11;
    p.hamming_weight = 16;

    double t0 = nowSec();
    auto ctx = std::make_shared<CkksContext>(p);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    Encryptor enc(ctx, pk);
    Decryptor dec(ctx, sk);
    Evaluator eval(ctx);

    BootstrapParams bp;
    bp.k_bound = 8.0;
    Bootstrapper boot(ctx, bp);
    GaloisKeys gks =
        keygen.galoisKeys(sk, boot.requiredRotations(), /*conj=*/true);
    double t_setup = nowSec() - t0;

    const size_t slots = ctx->slots();
    Prng rng(42);
    std::vector<std::complex<double>> v(slots);
    for (auto& z : v)
        z = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
    Plaintext pt = encoder.encode(v, ctx->scale(), 1);
    Ciphertext ct = enc.encrypt(pt);

    t0 = nowSec();
    Ciphertext fresh = boot.bootstrap(eval, encoder, ct, gks, rlk);
    double t_boot = nowSec() - t0;

    auto w = encoder.decode(dec.decrypt(fresh));
    double max_err = 0;
    for (size_t i = 0; i < slots; ++i)
        max_err = std::max(max_err, std::abs(w[i] - v[i]));

    std::printf("ring degree N          : %zu\n", ctx->degree());
    std::printf("slots                  : %zu\n", slots);
    std::printf("chain length (L+1)     : %zu limbs\n", ctx->maxLevel());
    std::printf("bootstrap depth        : %zu levels\n", boot.depth());
    std::printf("levels after bootstrap : %zu\n", fresh.level());
    std::printf("setup (keys + tables)  : %.2f s\n", t_setup);
    std::printf("bootstrap wall time    : %.2f s\n", t_boot);
    std::printf("max slot error         : %.2e  (log2: %.1f bits)\n",
                max_err, -std::log2(max_err));
    std::printf("\nBootstrapping %s: the refreshed ciphertext carries "
                "%zu usable levels.\n",
                max_err < 0.02 ? "SUCCEEDED" : "FAILED (precision)",
                fresh.level() - 1);
    return max_err < 0.02 ? 0 : 1;
}
