/**
 * @file
 * Wall-clock benchmark for the limb-parallel execution engine: measures
 * ns/op for the hot kernels (forward NTT over all limbs, fast basis
 * extension, KeySwitch, Mult, Rotate) at 1/2/4/8 pool threads and writes
 * BENCH_kernels.json. The thread sweep quantifies how far the
 * limb-parallel partitioning closes the gap to the memory-bound ceiling
 * the MAD model predicts — on enough cores the compute-bound kernels
 * (NTT) scale near-linearly while the bandwidth-bound ones saturate.
 *
 * The JSON records the host's core count: on a single-core container the
 * sweep degenerates to ~1x and the numbers only establish that the pool
 * adds no overhead; the speedup criterion is meaningful on CI-class
 * (4-core) hardware.
 *
 * The measurement harness lives in kernels_common.h, shared with
 * tools/perf_gate so the regression gate runs the exact same kernels.
 */
#include <cstdio>

#include "kernels_common.h"

int
main()
{
    using namespace madfhe::benchkit;

    auto params = benchParams();
    const double ref_ns = referenceKernelNs();
    KernelBench bench(params);
    auto results = bench.run({1, 2, 4, 8});

    if (!writeKernelsJson("BENCH_kernels.json", params, *bench.ctx, results,
                          ref_ns)) {
        std::fprintf(stderr, "cannot open BENCH_kernels.json\n");
        return 1;
    }

    std::printf("simd backend: %s\n", madfhe::simd::activeName());
    for (const auto& r : results)
        std::printf("%-16s threads=%zu  %12.0f ns/op\n", r.op.c_str(),
                    r.threads, r.ns_per_op);
    std::printf("wrote BENCH_kernels.json\n");
    return 0;
}
