/**
 * @file
 * Wall-clock benchmark for the limb-parallel execution engine: measures
 * ns/op for the hot kernels (forward NTT over all limbs, fast basis
 * extension, KeySwitch, Mult, Rotate) at 1/2/4/8 pool threads and writes
 * BENCH_kernels.json. The thread sweep quantifies how far the
 * limb-parallel partitioning closes the gap to the memory-bound ceiling
 * the MAD model predicts — on enough cores the compute-bound kernels
 * (NTT) scale near-linearly while the bandwidth-bound ones saturate.
 *
 * The JSON records the host's core count: on a single-core container the
 * sweep degenerates to ~1x and the numbers only establish that the pool
 * adds no overhead; the speedup criterion is meaningful on CI-class
 * (4-core) hardware.
 */
#include <chrono>
#include <complex>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keyswitch.h"
#include "rns/basis.h"
#include "rns/primegen.h"
#include "support/parallel.h"
#include "support/random.h"

namespace {

using namespace madfhe;
using Clock = std::chrono::steady_clock;

constexpr size_t kLogN = 13;
constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

/** Time `op` adaptively: at least `min_iters` and at least ~200 ms. */
template <typename Op>
double
nsPerOp(Op&& op, size_t min_iters)
{
    op(); // warm-up (touches pages, fills the NTT table cache)
    size_t iters = 0;
    double elapsed_ns = 0;
    const double target_ns = 200e6;
    while (iters < min_iters || elapsed_ns < target_ns) {
        auto t0 = Clock::now();
        op();
        auto t1 = Clock::now();
        elapsed_ns +=
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        ++iters;
        if (iters >= 4096)
            break;
    }
    return elapsed_ns / static_cast<double>(iters);
}

struct Result
{
    std::string op;
    size_t threads;
    double ns_per_op;
};

CkksParams
benchParams()
{
    CkksParams p;
    p.log_n = kLogN;
    p.log_scale = 40;
    p.first_prime_bits = 45;
    p.num_levels = 5;
    p.dnum = 3;
    return p;
}

RnsPoly
randomPoly(const std::shared_ptr<const RingContext>& ring, size_t limbs,
           u64 seed)
{
    RnsPoly p(ring, ring->qIndices(limbs), Rep::Coeff);
    Prng rng(seed);
    for (size_t i = 0; i < p.numLimbs(); ++i) {
        u64* a = p.limb(i);
        for (size_t c = 0; c < p.degree(); ++c)
            a[c] = rng.uniform(p.modulus(i).value());
    }
    return p;
}

} // namespace

int
main()
{
    auto params = benchParams();
    auto ctx = std::make_shared<CkksContext>(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, {1});
    Encryptor encryptor(ctx, pk);
    Evaluator eval(ctx);
    KeySwitcher ksw(ctx);

    const size_t n = ctx->degree();
    const size_t level = ctx->maxLevel();

    // Basis-extension operands: full Q chain -> the P primes.
    RnsBasis from = ctx->ring()->basisOf(ctx->ring()->qIndices(level));
    RnsBasis to = ctx->ring()->basisOf(ctx->ring()->pIndices());
    BasisConverter conv(from, to);
    RnsPoly conv_in = randomPoly(ctx->ring(), level, 11);
    std::vector<const u64*> conv_src;
    for (size_t i = 0; i < level; ++i)
        conv_src.push_back(conv_in.limb(i));
    std::vector<std::vector<u64>> conv_out(to.size(), std::vector<u64>(n));
    std::vector<u64*> conv_dst;
    for (auto& limb : conv_out)
        conv_dst.push_back(limb.data());

    auto slots = std::vector<std::complex<double>>(ctx->slots());
    Prng srng(7);
    for (auto& z : slots)
        z = {2.0 * srng.uniformReal() - 1.0, 2.0 * srng.uniformReal() - 1.0};
    Plaintext pt = encoder.encode(slots, ctx->scale(), level);
    Ciphertext ct_a = encryptor.encrypt(pt);
    Ciphertext ct_b = encryptor.encrypt(pt);

    std::vector<Result> results;
    for (size_t threads : kThreadSweep) {
        ThreadPool::setGlobalThreads(threads);

        // toEval/toCoeff form a symmetric pair with the same butterfly
        // count per direction, so timing the pair and halving isolates
        // one transform without an untimed state reset.
        RnsPoly ntt_poly = randomPoly(ctx->ring(), level, 13);
        results.push_back({"ntt_forward", threads, nsPerOp(
            [&] {
                ntt_poly.toEval();
                ntt_poly.toCoeff();
            },
            8) / 2.0});

        results.push_back({"basis_extension", threads, nsPerOp(
            [&] { conv.convert(conv_src, n, conv_dst); }, 8)});

        results.push_back({"keyswitch", threads, nsPerOp(
            [&] {
                auto r = ksw.keySwitch(ct_a.c1, rlk);
                (void)r;
            },
            4)});

        results.push_back({"mult", threads, nsPerOp(
            [&] {
                Ciphertext c = eval.mul(ct_a, ct_b, rlk);
                (void)c;
            },
            4)});

        results.push_back({"rotate", threads, nsPerOp(
            [&] {
                Ciphertext c = eval.rotate(ct_a, 1, gks);
                (void)c;
            },
            4)});
    }
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());

    std::FILE* f = std::fopen("BENCH_kernels.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot open BENCH_kernels.json\n");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"kernels_wallclock\",\n");
    std::fprintf(f,
                 "  \"params\": {\"log_n\": %zu, \"q_limbs\": %zu, "
                 "\"p_limbs\": %zu, \"dnum\": %zu},\n",
                 kLogN, level, ctx->ring()->numP(), params.dnum);
    std::fprintf(f, "  \"host\": {\"hardware_concurrency\": %u},\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(
            f, "    {\"op\": \"%s\", \"threads\": %zu, \"ns_per_op\": %.0f}%s\n",
            results[i].op.c_str(), results[i].threads, results[i].ns_per_op,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Speedups vs the 1-thread row of the same op.
    std::fprintf(f, "  \"speedup_vs_1_thread\": {\n");
    const char* ops[] = {"ntt_forward", "basis_extension", "keyswitch",
                         "mult", "rotate"};
    for (size_t o = 0; o < 5; ++o) {
        double base = 0;
        for (const auto& r : results)
            if (r.op == ops[o] && r.threads == 1)
                base = r.ns_per_op;
        std::fprintf(f, "    \"%s\": {", ops[o]);
        bool first = true;
        for (const auto& r : results) {
            if (r.op != ops[o] || r.threads == 1)
                continue;
            std::fprintf(f, "%s\"%zu\": %.2f", first ? "" : ", ", r.threads,
                         base / r.ns_per_op);
            first = false;
        }
        std::fprintf(f, "}%s\n", o + 1 < 5 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);

    for (const auto& r : results)
        std::printf("%-16s threads=%zu  %12.0f ns/op\n", r.op.c_str(),
                    r.threads, r.ns_per_op);
    std::printf("wrote BENCH_kernels.json\n");
    return 0;
}
