/**
 * @file
 * E11 — ablation sweeps over the design choices DESIGN.md calls out:
 * how dnum, fftIter, limb width, and the individual optimization toggles
 * move bootstrapping compute, DRAM and throughput. This is the "what
 * does each knob buy" companion to the Table 5 search.
 */
#include <cstdio>

#include "simfhe/hardware.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

namespace {

void
sweepDnum()
{
    std::printf("--- dnum sweep (q=50, L=40, fftIter=6, 32 MB, all opts) "
                "---\n");
    HardwareDesign hw = HardwareDesign::gpu().withCache(32);
    Table t({"dnum", "alpha", "raised limbs", "Gops", "DRAM GB", "key GB",
             "tput"});
    for (size_t dnum : {1, 2, 3, 4, 5, 8}) {
        SchemeConfig s = SchemeConfig::madOptimal();
        s.dnum = dnum;
        CostModel m(s, CacheConfig::megabytes(32), Optimizations::all());
        Cost c = m.bootstrap();
        double rt = runtimeSec(hw, c);
        t.addRow({std::to_string(dnum), std::to_string(s.alpha()),
                  std::to_string(s.raised(s.boot_limbs)),
                  fmtGiga(c.ops(), 1), fmtGiga(c.bytes(), 1),
                  fmtGiga(c.key_read, 1),
                  fmt(bootstrapThroughput(s, rt), 0)});
    }
    t.print();
    std::printf("Small dnum -> fewer, larger digits: fewer basis "
                "conversions but a wider raised basis; the paper's "
                "optimum sits at dnum=2.\n\n");
}

void
sweepFftIter()
{
    std::printf("--- fftIter sweep (q=50, L=40, dnum=2, 32 MB, all opts) "
                "---\n");
    HardwareDesign hw = HardwareDesign::gpu().withCache(32);
    Table t({"fftIter", "depth", "logQ1", "Gops", "DRAM GB", "tput"});
    for (size_t it : {1, 2, 3, 4, 5, 6, 7, 8}) {
        SchemeConfig s = SchemeConfig::madOptimal();
        s.fft_iter = it;
        if (s.bootstrapDepth() + 2 >= s.boot_limbs)
            continue;
        CostModel m(s, CacheConfig::megabytes(32), Optimizations::all());
        Cost c = m.bootstrap();
        double rt = runtimeSec(hw, c);
        t.addRow({std::to_string(it), std::to_string(s.bootstrapDepth()),
                  fmt(s.logQ1(), 0), fmtGiga(c.ops(), 1),
                  fmtGiga(c.bytes(), 1),
                  fmt(bootstrapThroughput(s, rt), 0)});
    }
    t.print();
    std::printf("More iterations -> smaller, cheaper matrices but more "
                "levels burnt (lower logQ1): a real optimum in between, "
                "as the paper's move from fftIter=3 to 6 shows.\n\n");
}

void
sweepLimbWidth()
{
    std::printf("--- limb width sweep (L scaled to ~2000 modulus bits, "
                "dnum=2, fftIter=6) ---\n");
    HardwareDesign hw = HardwareDesign::gpu().withCache(32);
    Table t({"q bits", "L", "logQ1", "Gops", "DRAM GB", "tput"});
    for (unsigned q : {36, 40, 44, 50, 54, 58}) {
        SchemeConfig s = SchemeConfig::madOptimal();
        s.limb_bits = q;
        s.boot_limbs = static_cast<size_t>(2000 / q);
        if (s.bootstrapDepth() + 2 >= s.boot_limbs)
            continue;
        CostModel m(s, CacheConfig::megabytes(32), Optimizations::all());
        Cost c = m.bootstrap();
        double rt = runtimeSec(hw, c);
        t.addRow({std::to_string(q), std::to_string(s.boot_limbs),
                  fmt(s.logQ1(), 0), fmtGiga(c.ops(), 1),
                  fmtGiga(c.bytes(), 1),
                  fmt(bootstrapThroughput(s, rt), 0)});
    }
    t.print();
    std::printf("Wider limbs amortize per-limb NTT overheads across more "
                "modulus bits per transfer.\n\n");
}

void
sweepSingleOpts()
{
    std::printf("--- one-at-a-time optimization toggles (baseline "
                "params, 32 MB) ---\n");
    SchemeConfig s = SchemeConfig::baselineJung();
    CacheConfig c32 = CacheConfig::megabytes(32);
    Cost base =
        CostModel(s, c32, Optimizations::none()).bootstrap();

    struct Case
    {
        const char* name;
        Optimizations o;
    };
    auto only = [](auto setter) {
        Optimizations o;
        setter(o);
        return o;
    };
    const Case cases[] = {
        {"O(1) only", only([](Optimizations& o) { o.cache_o1 = true; })},
        {"O(beta) only",
         only([](Optimizations& o) { o.cache_beta = true; })},
        {"O(alpha) only",
         only([](Optimizations& o) { o.cache_alpha = true; })},
        {"reorder only (needs alpha)",
         only([](Optimizations& o) {
             o.cache_alpha = o.limb_reorder = true;
         })},
        {"merge only",
         only([](Optimizations& o) { o.moddown_merge = true; })},
        {"hoist only",
         only([](Optimizations& o) { o.moddown_hoist = true; })},
        {"keycomp only",
         only([](Optimizations& o) { o.key_compression = true; })},
    };
    Table t({"toggle", "Gops", "d ops", "DRAM GB", "d DRAM"});
    for (const auto& cs : cases) {
        Cost c = CostModel(s, c32, cs.o).bootstrap();
        t.addRow({cs.name, fmtGiga(c.ops(), 1),
                  fmtPercent(1.0 - c.ops() / base.ops()),
                  fmtGiga(c.bytes(), 1),
                  fmtPercent(1.0 - c.bytes() / base.bytes())});
    }
    t.print();
    std::printf("The optimizations compose: no single toggle reaches the "
                "stacked Figure 2 + Figure 3 reductions.\n");
}

} // namespace

int
main()
{
    std::printf("=== Ablation sweeps over the MAD design space ===\n\n");
    sweepDnum();
    sweepFftIter();
    sweepLimbWidth();
    sweepSingleOpts();
    return 0;
}
