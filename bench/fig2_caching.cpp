/**
 * @file
 * E2 — reproduces Figure 2: cumulative impact of the MAD caching
 * optimizations on bootstrapping DRAM transfers (baseline parameters,
 * Table 5 row 1). Each successive optimization builds on the previous
 * ones; caching never changes the compute-op count.
 *
 * A second table backs the analytical curve with the functional
 * library: the limb-streaming executor (MADFHE_STREAM) runs the real
 * key-switch primitives at each opt level under memory tracing, and
 * the replayed DRAM bytes must fall monotonically along the same
 * off -> fuse -> cache -> full lattice the model predicts.
 */
#include <cstdio>

#include "ckks/stream.h"
#include "memtrace/crossval.h"
#include "simfhe/model.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Figure 2: cumulative caching optimizations, "
                "bootstrap DRAM transfers ===\n\n");

    SchemeConfig s = SchemeConfig::baselineJung();

    struct Step
    {
        const char* name;
        Optimizations opts;
        double cache_mb;
        double paper_reduction; // cumulative vs baseline
    };
    const Step steps[] = {
        {"Baseline [Jung et al.]", Optimizations::none(), 2, 0.00},
        {"O(1)-limb cache", Optimizations::o1(), 2, 0.15},
        {"O(beta)-limb cache", Optimizations::upToBeta(), 6, 0.22},
        {"O(alpha)-limb cache", Optimizations::upToAlpha(), 27, 0.44},
        {"Limb re-ordering", Optimizations::allCaching(), 27, 0.52},
    };

    Cost base = CostModel(s, CacheConfig::megabytes(2),
                          Optimizations::none()).bootstrap();

    Table t({"Configuration", "cache MB", "DRAM GB", "ct rd GB", "ct wr GB",
             "key GB", "reduction", "paper", "AI"});
    for (const auto& st : steps) {
        CostModel m(s, CacheConfig::megabytes(st.cache_mb), st.opts);
        Cost c = m.bootstrap();
        double red = 1.0 - c.bytes() / base.bytes();
        t.addRow({st.name, fmt(st.cache_mb, 0), fmtGiga(c.bytes(), 1),
                  fmtGiga(c.ct_read, 1), fmtGiga(c.ct_write, 1),
                  fmtGiga(c.key_read, 1), fmtPercent(red),
                  fmtPercent(st.paper_reduction), fmt(c.intensity(), 2)});
    }
    t.print();

    double ai0 = base.intensity();
    double ai1 = CostModel(s, CacheConfig::megabytes(32),
                           Optimizations::allCaching())
                     .bootstrap().intensity();
    std::printf("\nArithmetic intensity: %.2f -> %.2f (%.2fx; paper: "
                "0.72 -> 1.25, ~1.7x)\n", ai0, ai1, ai1 / ai0);
    std::printf("Switching-key reads are constant across caching "
                "optimizations, as in the paper.\n");

    // Functional-library column: execute the real key-switch primitives
    // at every limb-streaming opt level and replay the traces through
    // the scaled cache model. The traced DRAM bytes must fall
    // monotonically along the same lattice as the analytical curve.
    std::printf("\n=== Functional library: traced key-switch DRAM per "
                "stream policy (crossval params) ===\n\n");
    madfhe::memtrace::CrossValConfig cfg;
    madfhe::memtrace::PolicySweepReport sweep =
        madfhe::memtrace::runPolicySweep(cfg);

    Table ft({"MADFHE_STREAM", "opt level", "KeySwitch MB", "Mult MB",
              "Rotate MB", "KS reduction"});
    double ks_base = 0.0;
    for (const auto& row : sweep.rows) {
        double ks = 0.0, mult = 0.0, rot = 0.0;
        for (const auto& p : row.primitives) {
            if (p.name == "KeySwitch")
                ks = p.tracedBytes();
            else if (p.name == "Mult")
                mult = p.tracedBytes();
            else if (p.name == "Rotate")
                rot = p.tracedBytes();
        }
        if (row.policy == madfhe::StreamPolicy::Off)
            ks_base = ks;
        const char* opt_level = "none";
        switch (row.policy) {
        case madfhe::StreamPolicy::Off: opt_level = "none"; break;
        case madfhe::StreamPolicy::Fuse: opt_level = "O(1)-limb"; break;
        case madfhe::StreamPolicy::Cache: opt_level = "O(alpha)-limb"; break;
        case madfhe::StreamPolicy::Full: opt_level = "limb re-order"; break;
        }
        const double mb = 1024.0 * 1024.0;
        ft.addRow({madfhe::streamPolicyName(row.policy), opt_level,
                   fmt(ks / mb, 2), fmt(mult / mb, 2), fmt(rot / mb, 2),
                   ks_base > 0 ? fmtPercent(1.0 - ks / ks_base) : "n/a"});
    }
    ft.print();
    const bool mono = sweep.monotonicOk("KeySwitch") &&
                      sweep.monotonicOk("Mult") &&
                      sweep.monotonicOk("Rotate");
    std::printf("\nTraced traffic monotone off > fuse > cache > full: %s\n",
                mono ? "yes" : "NO (regression)");
    return mono ? 0 : 1;
}
