/**
 * @file
 * E2 — reproduces Figure 2: cumulative impact of the MAD caching
 * optimizations on bootstrapping DRAM transfers (baseline parameters,
 * Table 5 row 1). Each successive optimization builds on the previous
 * ones; caching never changes the compute-op count.
 */
#include <cstdio>

#include "simfhe/model.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== Figure 2: cumulative caching optimizations, "
                "bootstrap DRAM transfers ===\n\n");

    SchemeConfig s = SchemeConfig::baselineJung();

    struct Step
    {
        const char* name;
        Optimizations opts;
        double cache_mb;
        double paper_reduction; // cumulative vs baseline
    };
    const Step steps[] = {
        {"Baseline [Jung et al.]", Optimizations::none(), 2, 0.00},
        {"O(1)-limb cache", Optimizations::o1(), 2, 0.15},
        {"O(beta)-limb cache", Optimizations::upToBeta(), 6, 0.22},
        {"O(alpha)-limb cache", Optimizations::upToAlpha(), 27, 0.44},
        {"Limb re-ordering", Optimizations::allCaching(), 27, 0.52},
    };

    Cost base = CostModel(s, CacheConfig::megabytes(2),
                          Optimizations::none()).bootstrap();

    Table t({"Configuration", "cache MB", "DRAM GB", "ct rd GB", "ct wr GB",
             "key GB", "reduction", "paper", "AI"});
    for (const auto& st : steps) {
        CostModel m(s, CacheConfig::megabytes(st.cache_mb), st.opts);
        Cost c = m.bootstrap();
        double red = 1.0 - c.bytes() / base.bytes();
        t.addRow({st.name, fmt(st.cache_mb, 0), fmtGiga(c.bytes(), 1),
                  fmtGiga(c.ct_read, 1), fmtGiga(c.ct_write, 1),
                  fmtGiga(c.key_read, 1), fmtPercent(red),
                  fmtPercent(st.paper_reduction), fmt(c.intensity(), 2)});
    }
    t.print();

    double ai0 = base.intensity();
    double ai1 = CostModel(s, CacheConfig::megabytes(32),
                           Optimizations::allCaching())
                     .bootstrap().intensity();
    std::printf("\nArithmetic intensity: %.2f -> %.2f (%.2fx; paper: "
                "0.72 -> 1.25, ~1.7x)\n", ai0, ai1, ai1 / ai0);
    std::printf("Switching-key reads are constant across caching "
                "optimizations, as in the paper.\n");
    return 0;
}
