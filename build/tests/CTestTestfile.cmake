# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/modarith_test[1]_include.cmake")
include("/root/repo/build/tests/primegen_test[1]_include.cmake")
include("/root/repo/build/tests/ntt_test[1]_include.cmake")
include("/root/repo/build/tests/basis_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/encoder_test[1]_include.cmake")
include("/root/repo/build/tests/ckks_test[1]_include.cmake")
include("/root/repo/build/tests/keys_test[1]_include.cmake")
include("/root/repo/build/tests/keyswitch_test[1]_include.cmake")
include("/root/repo/build/tests/matvec_test[1]_include.cmake")
include("/root/repo/build/tests/dft_test[1]_include.cmake")
include("/root/repo/build/tests/chebyshev_test[1]_include.cmake")
include("/root/repo/build/tests/bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/simfhe_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/noise_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/model_detail_test[1]_include.cmake")
include("/root/repo/build/tests/apps_functional_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/params_test[1]_include.cmake")
include("/root/repo/build/tests/polyeval_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
