file(REMOVE_RECURSE
  "CMakeFiles/primegen_test.dir/primegen_test.cpp.o"
  "CMakeFiles/primegen_test.dir/primegen_test.cpp.o.d"
  "primegen_test"
  "primegen_test.pdb"
  "primegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
