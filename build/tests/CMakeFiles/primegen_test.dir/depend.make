# Empty dependencies file for primegen_test.
# This may be replaced when dependencies are built.
