# Empty compiler generated dependencies file for matvec_test.
# This may be replaced when dependencies are built.
