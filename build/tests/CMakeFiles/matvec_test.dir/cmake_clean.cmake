file(REMOVE_RECURSE
  "CMakeFiles/matvec_test.dir/matvec_test.cpp.o"
  "CMakeFiles/matvec_test.dir/matvec_test.cpp.o.d"
  "matvec_test"
  "matvec_test.pdb"
  "matvec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
