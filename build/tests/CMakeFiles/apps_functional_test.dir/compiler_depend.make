# Empty compiler generated dependencies file for apps_functional_test.
# This may be replaced when dependencies are built.
