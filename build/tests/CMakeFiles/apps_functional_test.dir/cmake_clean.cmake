file(REMOVE_RECURSE
  "CMakeFiles/apps_functional_test.dir/apps_functional_test.cpp.o"
  "CMakeFiles/apps_functional_test.dir/apps_functional_test.cpp.o.d"
  "apps_functional_test"
  "apps_functional_test.pdb"
  "apps_functional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_functional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
