file(REMOVE_RECURSE
  "CMakeFiles/simfhe_test.dir/simfhe_test.cpp.o"
  "CMakeFiles/simfhe_test.dir/simfhe_test.cpp.o.d"
  "simfhe_test"
  "simfhe_test.pdb"
  "simfhe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simfhe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
