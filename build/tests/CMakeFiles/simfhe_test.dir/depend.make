# Empty dependencies file for simfhe_test.
# This may be replaced when dependencies are built.
