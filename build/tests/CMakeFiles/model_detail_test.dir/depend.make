# Empty dependencies file for model_detail_test.
# This may be replaced when dependencies are built.
