file(REMOVE_RECURSE
  "CMakeFiles/model_detail_test.dir/model_detail_test.cpp.o"
  "CMakeFiles/model_detail_test.dir/model_detail_test.cpp.o.d"
  "model_detail_test"
  "model_detail_test.pdb"
  "model_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
