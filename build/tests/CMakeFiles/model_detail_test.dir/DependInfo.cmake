
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model_detail_test.cpp" "tests/CMakeFiles/model_detail_test.dir/model_detail_test.cpp.o" "gcc" "tests/CMakeFiles/model_detail_test.dir/model_detail_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mad_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/mad_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/mad_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/ckks/CMakeFiles/mad_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/boot/CMakeFiles/mad_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/simfhe/CMakeFiles/mad_simfhe.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mad_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
