# Empty compiler generated dependencies file for ntt_test.
# This may be replaced when dependencies are built.
