# Empty dependencies file for modarith_test.
# This may be replaced when dependencies are built.
