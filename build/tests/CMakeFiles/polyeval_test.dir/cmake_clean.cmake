file(REMOVE_RECURSE
  "CMakeFiles/polyeval_test.dir/polyeval_test.cpp.o"
  "CMakeFiles/polyeval_test.dir/polyeval_test.cpp.o.d"
  "polyeval_test"
  "polyeval_test.pdb"
  "polyeval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyeval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
