# Empty compiler generated dependencies file for polyeval_test.
# This may be replaced when dependencies are built.
