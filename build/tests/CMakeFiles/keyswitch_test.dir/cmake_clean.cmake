file(REMOVE_RECURSE
  "CMakeFiles/keyswitch_test.dir/keyswitch_test.cpp.o"
  "CMakeFiles/keyswitch_test.dir/keyswitch_test.cpp.o.d"
  "keyswitch_test"
  "keyswitch_test.pdb"
  "keyswitch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyswitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
