# Empty dependencies file for keyswitch_test.
# This may be replaced when dependencies are built.
