# Empty compiler generated dependencies file for boot_debug.
# This may be replaced when dependencies are built.
