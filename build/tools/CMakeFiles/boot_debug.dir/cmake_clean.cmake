file(REMOVE_RECURSE
  "CMakeFiles/boot_debug.dir/boot_debug.cpp.o"
  "CMakeFiles/boot_debug.dir/boot_debug.cpp.o.d"
  "boot_debug"
  "boot_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
