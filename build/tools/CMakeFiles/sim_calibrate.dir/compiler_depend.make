# Empty compiler generated dependencies file for sim_calibrate.
# This may be replaced when dependencies are built.
