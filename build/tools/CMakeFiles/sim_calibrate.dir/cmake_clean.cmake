file(REMOVE_RECURSE
  "CMakeFiles/sim_calibrate.dir/sim_calibrate.cpp.o"
  "CMakeFiles/sim_calibrate.dir/sim_calibrate.cpp.o.d"
  "sim_calibrate"
  "sim_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
