file(REMOVE_RECURSE
  "CMakeFiles/madfhe_sim.dir/madfhe_sim.cpp.o"
  "CMakeFiles/madfhe_sim.dir/madfhe_sim.cpp.o.d"
  "madfhe_sim"
  "madfhe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madfhe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
