# Empty compiler generated dependencies file for madfhe_sim.
# This may be replaced when dependencies are built.
