file(REMOVE_RECURSE
  "libmad_boot.a"
)
