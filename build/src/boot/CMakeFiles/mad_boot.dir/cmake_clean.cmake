file(REMOVE_RECURSE
  "CMakeFiles/mad_boot.dir/bootstrapper.cpp.o"
  "CMakeFiles/mad_boot.dir/bootstrapper.cpp.o.d"
  "CMakeFiles/mad_boot.dir/chebyshev.cpp.o"
  "CMakeFiles/mad_boot.dir/chebyshev.cpp.o.d"
  "CMakeFiles/mad_boot.dir/dft.cpp.o"
  "CMakeFiles/mad_boot.dir/dft.cpp.o.d"
  "libmad_boot.a"
  "libmad_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
