# Empty compiler generated dependencies file for mad_boot.
# This may be replaced when dependencies are built.
