file(REMOVE_RECURSE
  "CMakeFiles/mad_ring.dir/poly.cpp.o"
  "CMakeFiles/mad_ring.dir/poly.cpp.o.d"
  "CMakeFiles/mad_ring.dir/ring.cpp.o"
  "CMakeFiles/mad_ring.dir/ring.cpp.o.d"
  "libmad_ring.a"
  "libmad_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
