file(REMOVE_RECURSE
  "libmad_ring.a"
)
