# Empty compiler generated dependencies file for mad_ring.
# This may be replaced when dependencies are built.
