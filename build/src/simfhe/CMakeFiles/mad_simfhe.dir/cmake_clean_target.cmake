file(REMOVE_RECURSE
  "libmad_simfhe.a"
)
