# Empty dependencies file for mad_simfhe.
# This may be replaced when dependencies are built.
