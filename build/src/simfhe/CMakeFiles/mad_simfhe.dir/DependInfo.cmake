
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simfhe/area.cpp" "src/simfhe/CMakeFiles/mad_simfhe.dir/area.cpp.o" "gcc" "src/simfhe/CMakeFiles/mad_simfhe.dir/area.cpp.o.d"
  "/root/repo/src/simfhe/config.cpp" "src/simfhe/CMakeFiles/mad_simfhe.dir/config.cpp.o" "gcc" "src/simfhe/CMakeFiles/mad_simfhe.dir/config.cpp.o.d"
  "/root/repo/src/simfhe/hardware.cpp" "src/simfhe/CMakeFiles/mad_simfhe.dir/hardware.cpp.o" "gcc" "src/simfhe/CMakeFiles/mad_simfhe.dir/hardware.cpp.o.d"
  "/root/repo/src/simfhe/model.cpp" "src/simfhe/CMakeFiles/mad_simfhe.dir/model.cpp.o" "gcc" "src/simfhe/CMakeFiles/mad_simfhe.dir/model.cpp.o.d"
  "/root/repo/src/simfhe/report.cpp" "src/simfhe/CMakeFiles/mad_simfhe.dir/report.cpp.o" "gcc" "src/simfhe/CMakeFiles/mad_simfhe.dir/report.cpp.o.d"
  "/root/repo/src/simfhe/search.cpp" "src/simfhe/CMakeFiles/mad_simfhe.dir/search.cpp.o" "gcc" "src/simfhe/CMakeFiles/mad_simfhe.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mad_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
