file(REMOVE_RECURSE
  "CMakeFiles/mad_simfhe.dir/area.cpp.o"
  "CMakeFiles/mad_simfhe.dir/area.cpp.o.d"
  "CMakeFiles/mad_simfhe.dir/config.cpp.o"
  "CMakeFiles/mad_simfhe.dir/config.cpp.o.d"
  "CMakeFiles/mad_simfhe.dir/hardware.cpp.o"
  "CMakeFiles/mad_simfhe.dir/hardware.cpp.o.d"
  "CMakeFiles/mad_simfhe.dir/model.cpp.o"
  "CMakeFiles/mad_simfhe.dir/model.cpp.o.d"
  "CMakeFiles/mad_simfhe.dir/report.cpp.o"
  "CMakeFiles/mad_simfhe.dir/report.cpp.o.d"
  "CMakeFiles/mad_simfhe.dir/search.cpp.o"
  "CMakeFiles/mad_simfhe.dir/search.cpp.o.d"
  "libmad_simfhe.a"
  "libmad_simfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_simfhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
