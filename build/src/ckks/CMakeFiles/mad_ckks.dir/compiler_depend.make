# Empty compiler generated dependencies file for mad_ckks.
# This may be replaced when dependencies are built.
