file(REMOVE_RECURSE
  "libmad_ckks.a"
)
