
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckks/context.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/context.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/context.cpp.o.d"
  "/root/repo/src/ckks/encoder.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/encoder.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/encoder.cpp.o.d"
  "/root/repo/src/ckks/encryptor.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/encryptor.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/encryptor.cpp.o.d"
  "/root/repo/src/ckks/evaluator.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/evaluator.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/evaluator.cpp.o.d"
  "/root/repo/src/ckks/keys.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/keys.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/keys.cpp.o.d"
  "/root/repo/src/ckks/keyswitch.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/keyswitch.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/keyswitch.cpp.o.d"
  "/root/repo/src/ckks/matvec.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/matvec.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/matvec.cpp.o.d"
  "/root/repo/src/ckks/noise.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/noise.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/noise.cpp.o.d"
  "/root/repo/src/ckks/params.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/params.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/params.cpp.o.d"
  "/root/repo/src/ckks/polyeval.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/polyeval.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/polyeval.cpp.o.d"
  "/root/repo/src/ckks/serialize.cpp" "src/ckks/CMakeFiles/mad_ckks.dir/serialize.cpp.o" "gcc" "src/ckks/CMakeFiles/mad_ckks.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ring/CMakeFiles/mad_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/mad_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mad_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
