file(REMOVE_RECURSE
  "CMakeFiles/mad_ckks.dir/context.cpp.o"
  "CMakeFiles/mad_ckks.dir/context.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/encoder.cpp.o"
  "CMakeFiles/mad_ckks.dir/encoder.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/encryptor.cpp.o"
  "CMakeFiles/mad_ckks.dir/encryptor.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/evaluator.cpp.o"
  "CMakeFiles/mad_ckks.dir/evaluator.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/keys.cpp.o"
  "CMakeFiles/mad_ckks.dir/keys.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/keyswitch.cpp.o"
  "CMakeFiles/mad_ckks.dir/keyswitch.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/matvec.cpp.o"
  "CMakeFiles/mad_ckks.dir/matvec.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/noise.cpp.o"
  "CMakeFiles/mad_ckks.dir/noise.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/params.cpp.o"
  "CMakeFiles/mad_ckks.dir/params.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/polyeval.cpp.o"
  "CMakeFiles/mad_ckks.dir/polyeval.cpp.o.d"
  "CMakeFiles/mad_ckks.dir/serialize.cpp.o"
  "CMakeFiles/mad_ckks.dir/serialize.cpp.o.d"
  "libmad_ckks.a"
  "libmad_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
