# Empty dependencies file for mad_apps.
# This may be replaced when dependencies are built.
