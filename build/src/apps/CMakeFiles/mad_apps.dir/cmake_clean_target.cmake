file(REMOVE_RECURSE
  "libmad_apps.a"
)
