file(REMOVE_RECURSE
  "CMakeFiles/mad_apps.dir/helr.cpp.o"
  "CMakeFiles/mad_apps.dir/helr.cpp.o.d"
  "CMakeFiles/mad_apps.dir/lr.cpp.o"
  "CMakeFiles/mad_apps.dir/lr.cpp.o.d"
  "CMakeFiles/mad_apps.dir/mlp.cpp.o"
  "CMakeFiles/mad_apps.dir/mlp.cpp.o.d"
  "CMakeFiles/mad_apps.dir/resnet.cpp.o"
  "CMakeFiles/mad_apps.dir/resnet.cpp.o.d"
  "libmad_apps.a"
  "libmad_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
