file(REMOVE_RECURSE
  "CMakeFiles/mad_rns.dir/basis.cpp.o"
  "CMakeFiles/mad_rns.dir/basis.cpp.o.d"
  "CMakeFiles/mad_rns.dir/modarith.cpp.o"
  "CMakeFiles/mad_rns.dir/modarith.cpp.o.d"
  "CMakeFiles/mad_rns.dir/ntt.cpp.o"
  "CMakeFiles/mad_rns.dir/ntt.cpp.o.d"
  "CMakeFiles/mad_rns.dir/primegen.cpp.o"
  "CMakeFiles/mad_rns.dir/primegen.cpp.o.d"
  "libmad_rns.a"
  "libmad_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
