file(REMOVE_RECURSE
  "libmad_rns.a"
)
