# Empty dependencies file for mad_rns.
# This may be replaced when dependencies are built.
