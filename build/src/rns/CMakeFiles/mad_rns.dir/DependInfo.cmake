
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rns/basis.cpp" "src/rns/CMakeFiles/mad_rns.dir/basis.cpp.o" "gcc" "src/rns/CMakeFiles/mad_rns.dir/basis.cpp.o.d"
  "/root/repo/src/rns/modarith.cpp" "src/rns/CMakeFiles/mad_rns.dir/modarith.cpp.o" "gcc" "src/rns/CMakeFiles/mad_rns.dir/modarith.cpp.o.d"
  "/root/repo/src/rns/ntt.cpp" "src/rns/CMakeFiles/mad_rns.dir/ntt.cpp.o" "gcc" "src/rns/CMakeFiles/mad_rns.dir/ntt.cpp.o.d"
  "/root/repo/src/rns/primegen.cpp" "src/rns/CMakeFiles/mad_rns.dir/primegen.cpp.o" "gcc" "src/rns/CMakeFiles/mad_rns.dir/primegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mad_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
