file(REMOVE_RECURSE
  "libmad_support.a"
)
