file(REMOVE_RECURSE
  "CMakeFiles/mad_support.dir/bigint.cpp.o"
  "CMakeFiles/mad_support.dir/bigint.cpp.o.d"
  "CMakeFiles/mad_support.dir/logging.cpp.o"
  "CMakeFiles/mad_support.dir/logging.cpp.o.d"
  "CMakeFiles/mad_support.dir/random.cpp.o"
  "CMakeFiles/mad_support.dir/random.cpp.o.d"
  "CMakeFiles/mad_support.dir/security.cpp.o"
  "CMakeFiles/mad_support.dir/security.cpp.o.d"
  "libmad_support.a"
  "libmad_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
