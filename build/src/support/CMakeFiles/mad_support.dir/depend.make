# Empty dependencies file for mad_support.
# This may be replaced when dependencies are built.
