# Empty dependencies file for fig6_resnet.
# This may be replaced when dependencies are built.
