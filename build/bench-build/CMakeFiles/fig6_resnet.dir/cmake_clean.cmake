file(REMOVE_RECURSE
  "../bench/fig6_resnet"
  "../bench/fig6_resnet.pdb"
  "CMakeFiles/fig6_resnet.dir/fig6_resnet.cpp.o"
  "CMakeFiles/fig6_resnet.dir/fig6_resnet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
