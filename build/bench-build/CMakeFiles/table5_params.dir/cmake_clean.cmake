file(REMOVE_RECURSE
  "../bench/table5_params"
  "../bench/table5_params.pdb"
  "CMakeFiles/table5_params.dir/table5_params.cpp.o"
  "CMakeFiles/table5_params.dir/table5_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
