# Empty compiler generated dependencies file for fig2_caching.
# This may be replaced when dependencies are built.
