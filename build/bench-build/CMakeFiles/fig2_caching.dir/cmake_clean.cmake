file(REMOVE_RECURSE
  "../bench/fig2_caching"
  "../bench/fig2_caching.pdb"
  "CMakeFiles/fig2_caching.dir/fig2_caching.cpp.o"
  "CMakeFiles/fig2_caching.dir/fig2_caching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
