file(REMOVE_RECURSE
  "../bench/ckks_ops"
  "../bench/ckks_ops.pdb"
  "CMakeFiles/ckks_ops.dir/ckks_ops.cpp.o"
  "CMakeFiles/ckks_ops.dir/ckks_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckks_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
