# Empty compiler generated dependencies file for ckks_ops.
# This may be replaced when dependencies are built.
