# Empty dependencies file for table4_intensity.
# This may be replaced when dependencies are built.
