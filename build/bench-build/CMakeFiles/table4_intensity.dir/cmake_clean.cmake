file(REMOVE_RECURSE
  "../bench/table4_intensity"
  "../bench/table4_intensity.pdb"
  "CMakeFiles/table4_intensity.dir/table4_intensity.cpp.o"
  "CMakeFiles/table4_intensity.dir/table4_intensity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
