# Empty compiler generated dependencies file for ai_progression.
# This may be replaced when dependencies are built.
