file(REMOVE_RECURSE
  "../bench/ai_progression"
  "../bench/ai_progression.pdb"
  "CMakeFiles/ai_progression.dir/ai_progression.cpp.o"
  "CMakeFiles/ai_progression.dir/ai_progression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ai_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
