file(REMOVE_RECURSE
  "../bench/bootstrap_func"
  "../bench/bootstrap_func.pdb"
  "CMakeFiles/bootstrap_func.dir/bootstrap_func.cpp.o"
  "CMakeFiles/bootstrap_func.dir/bootstrap_func.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
