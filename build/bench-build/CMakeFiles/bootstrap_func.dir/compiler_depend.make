# Empty compiler generated dependencies file for bootstrap_func.
# This may be replaced when dependencies are built.
