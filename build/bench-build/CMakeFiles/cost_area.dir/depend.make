# Empty dependencies file for cost_area.
# This may be replaced when dependencies are built.
