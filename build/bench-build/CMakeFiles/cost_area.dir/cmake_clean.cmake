file(REMOVE_RECURSE
  "../bench/cost_area"
  "../bench/cost_area.pdb"
  "CMakeFiles/cost_area.dir/cost_area.cpp.o"
  "CMakeFiles/cost_area.dir/cost_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
