file(REMOVE_RECURSE
  "../bench/kernels_micro"
  "../bench/kernels_micro.pdb"
  "CMakeFiles/kernels_micro.dir/kernels_micro.cpp.o"
  "CMakeFiles/kernels_micro.dir/kernels_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
