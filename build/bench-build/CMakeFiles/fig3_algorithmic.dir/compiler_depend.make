# Empty compiler generated dependencies file for fig3_algorithmic.
# This may be replaced when dependencies are built.
