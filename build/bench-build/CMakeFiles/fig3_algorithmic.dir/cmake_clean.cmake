file(REMOVE_RECURSE
  "../bench/fig3_algorithmic"
  "../bench/fig3_algorithmic.pdb"
  "CMakeFiles/fig3_algorithmic.dir/fig3_algorithmic.cpp.o"
  "CMakeFiles/fig3_algorithmic.dir/fig3_algorithmic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_algorithmic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
