file(REMOVE_RECURSE
  "../bench/fig6_lr_training"
  "../bench/fig6_lr_training.pdb"
  "CMakeFiles/fig6_lr_training.dir/fig6_lr_training.cpp.o"
  "CMakeFiles/fig6_lr_training.dir/fig6_lr_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lr_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
