# Empty compiler generated dependencies file for table6_bootstrap.
# This may be replaced when dependencies are built.
