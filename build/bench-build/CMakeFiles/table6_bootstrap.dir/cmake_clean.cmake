file(REMOVE_RECURSE
  "../bench/table6_bootstrap"
  "../bench/table6_bootstrap.pdb"
  "CMakeFiles/table6_bootstrap.dir/table6_bootstrap.cpp.o"
  "CMakeFiles/table6_bootstrap.dir/table6_bootstrap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
