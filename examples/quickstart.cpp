/**
 * @file
 * Quickstart: encrypt two complex vectors, compute (a + b) * a - rotate
 * the result, decrypt, and compare against the plaintext computation.
 * Also shows the SimFHE side: what the same operations cost at
 * paper-scale parameters.
 */
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "simfhe/model.h"

using namespace madfhe;

int
main()
{
    std::printf("=== madfhe quickstart ===\n\n");

    // 1. Pick parameters and build the context. These are demo-sized
    //    (N = 2^12); see CkksParams for the knobs.
    CkksParams params = CkksParams::medium();
    auto ctx = std::make_shared<CkksContext>(params);
    std::printf("ring degree N = %zu, slots = %zu, levels = %zu\n",
                ctx->degree(), ctx->slots(), ctx->maxLevel());

    // 2. Generate keys.
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, {3});

    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    // 3. Encode + encrypt.
    const size_t slots = ctx->slots();
    std::vector<std::complex<double>> a(slots), b(slots);
    for (size_t i = 0; i < slots; ++i) {
        a[i] = {0.001 * static_cast<double>(i), 0.5};
        b[i] = {1.0, -0.001 * static_cast<double>(i)};
    }
    Ciphertext ct_a = encryptor.encrypt(
        encoder.encode(a, ctx->scale(), ctx->maxLevel()));
    Ciphertext ct_b = encryptor.encrypt(
        encoder.encode(b, ctx->scale(), ctx->maxLevel()));

    // 4. Compute rotate((a + b) * a, 3) homomorphically.
    Ciphertext sum = eval.add(ct_a, ct_b);
    Ciphertext prod = eval.mul(sum, ct_a, rlk); // relinearize + rescale
    Ciphertext rot = eval.rotate(prod, 3, gks);

    // 5. Decrypt and check.
    auto result = encoder.decode(decryptor.decrypt(rot));
    double max_err = 0;
    for (size_t i = 0; i < slots; ++i) {
        auto expect = (a[(i + 3) % slots] + b[(i + 3) % slots]) *
                      a[(i + 3) % slots];
        max_err = std::max(max_err, std::abs(result[i] - expect));
    }
    std::printf("homomorphic rotate((a+b)*a, 3): max error = %.2e\n",
                max_err);
    std::printf("levels remaining: %zu of %zu\n\n", rot.level(),
                ctx->maxLevel());

    // 6. The SimFHE view: what would this cost at the paper's scale
    //    (N = 2^17, l = 35) on a 32 MB-cache accelerator?
    using namespace simfhe;
    SchemeConfig s = SchemeConfig::baselineJung();
    CostModel naive(s, CacheConfig::megabytes(32), Optimizations::none());
    CostModel mad(s, CacheConfig::megabytes(32), Optimizations::all());
    Cost cn = naive.add(35) + naive.mult(35) + naive.rotate(35);
    Cost cm = mad.add(35) + mad.mult(35) + mad.rotate(35);
    std::printf("SimFHE @ N=2^17: Add+Mult+Rotate costs %s\n",
                cn.summary().c_str());
    std::printf("           with MAD optimizations:    %s\n",
                cm.summary().c_str());
    std::printf("\nDone. Error %s\n", max_err < 1e-3 ? "OK" : "TOO HIGH");
    return max_err < 1e-3 ? 0 : 1;
}
