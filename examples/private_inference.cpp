/**
 * @file
 * Private neural-network inference (a functional miniature of the
 * ResNet-20 workload the paper evaluates) using the reusable
 * apps::EncryptedMlp: a 2-layer MLP with square activations runs on a
 * batch of encrypted inputs. The dense layers are block-circulant
 * PtMatVecMult transforms with MAD double-hoisting enabled.
 */
#include <cmath>
#include <cstdio>

#include "apps/mlp.h"
#include "ckks/encryptor.h"
#include "support/random.h"

using namespace madfhe;
using namespace madfhe::apps;

int
main()
{
    std::printf("=== Private MLP inference (8 -> 8 -> 4, square "
                "activation) ===\n\n");

    CkksParams p;
    p.log_n = 11;
    p.log_scale = 36;
    p.first_prime_bits = 48;
    p.num_levels = 6;
    p.dnum = 2;
    auto ctx = std::make_shared<CkksContext>(p);
    const size_t dim = 8, out_dim = 4;

    // Server-side plaintext weights.
    Prng rng(21);
    auto randMat = [&](size_t rows) {
        std::vector<std::vector<double>> m(rows, std::vector<double>(dim));
        for (auto& row : m)
            for (auto& v : row)
                v = (2.0 * rng.uniformReal() - 1.0) * 0.5;
        return m;
    };
    MatVecOptions mv;
    mv.double_hoist = true; // MAD ModDown hoisting across giant steps
    EncryptedMlp mlp(ctx, {randMat(dim), randMat(out_dim)}, dim, mv);

    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, mlp.requiredRotations());
    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    // Client-side encrypted inputs, batch() samples per ciphertext.
    std::vector<double> input(ctx->slots());
    for (auto& v : input)
        v = 2.0 * rng.uniformReal() - 1.0;
    Ciphertext ct = encryptor.encrypt(
        encoder.encodeReal(input, ctx->scale(), ctx->maxLevel()));

    Ciphertext logits = mlp.infer(eval, encoder, ct, gks, rlk);
    auto out = encoder.decode(decryptor.decrypt(logits));

    // Validate against the plaintext forward pass per batch element.
    double max_err = 0;
    size_t agree = 0;
    for (size_t b = 0; b < mlp.batch(); ++b) {
        std::vector<double> sample(input.begin() + b * dim,
                                   input.begin() + (b + 1) * dim);
        auto ref = mlp.inferPlain(sample);
        size_t ref_arg = 0, enc_arg = 0;
        for (size_t r = 0; r < out_dim; ++r) {
            double enc = out[b * dim + r].real();
            max_err = std::max(max_err, std::abs(enc - ref[r]));
            if (ref[r] > ref[ref_arg])
                ref_arg = r;
            if (enc > out[b * dim + enc_arg].real())
                enc_arg = r;
        }
        agree += (ref_arg == enc_arg);
    }

    std::printf("batch size          : %zu encrypted samples\n",
                mlp.batch());
    std::printf("levels consumed     : %zu of %zu\n",
                ctx->maxLevel() - logits.level(), ctx->maxLevel());
    std::printf("max logit error     : %.2e\n", max_err);
    std::printf("argmax agreement    : %zu / %zu\n", agree, mlp.batch());
    bool ok = max_err < 1e-3 && agree == mlp.batch();
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
