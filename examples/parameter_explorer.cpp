/**
 * @file
 * Parameter explorer: the SimFHE workflow of Section 4.1 — given an
 * on-chip memory budget, search the CKKS parameter space for the
 * bootstrapping-throughput-maximizing configuration, and show how the
 * optimum shifts with the memory budget.
 */
#include <cstdio>

#include "simfhe/report.h"
#include "simfhe/search.h"

using namespace madfhe::simfhe;

int
main()
{
    std::printf("=== SimFHE parameter explorer ===\n\n");
    std::printf("Sweeping on-chip memory budgets on a GPU-class system "
                "(900 GB/s, 2250 modmult/cycle):\n\n");

    SearchSpace space;
    space.min_limb_bits = 42;
    space.max_limb_bits = 60;
    space.min_limbs = 26;
    space.max_limbs = 46;
    space.dnums = {1, 2, 3, 4, 5};
    space.fft_iters = {2, 3, 4, 5, 6, 7};

    Table t({"cache MB", "q", "L", "dnum", "fftIter", "logQ1",
             "runtime ms", "throughput", "bound"});
    for (double mb : {2.0, 6.0, 16.0, 32.0, 64.0, 256.0}) {
        HardwareDesign hw = HardwareDesign::gpu().withCache(mb);
        auto results = searchParameters(space, hw, 1);
        if (results.empty())
            continue;
        const auto& r = results.front();
        t.addRow({fmt(mb, 0), std::to_string(r.config.limb_bits),
                  std::to_string(r.config.boot_limbs),
                  std::to_string(r.config.dnum),
                  std::to_string(r.config.fft_iter),
                  fmt(r.config.logQ1(), 0), fmt(r.runtime_sec * 1e3, 2),
                  fmt(r.throughput, 0),
                  r.memory_bound ? "memory" : "compute"});
    }
    t.print();

    std::printf("\nObservations (matching the paper):\n");
    std::printf("  - Throughput saturates around 32 MB: the MAD "
                "optimizations need O(alpha) limbs of cache, beyond which "
                "extra SRAM buys nothing.\n");
    std::printf("  - Larger L with moderate dnum and deeper fftIter "
                "splits win once the cache covers the basis-change "
                "working set (compare the paper's Table 5: q=50, L=40, "
                "dnum=2, fftIter=6).\n");
    return 0;
}
