/**
 * @file
 * Encrypted descriptive statistics: mean, variance, and covariance of two
 * encrypted vectors via rotate-and-add reductions, using hoisted
 * rotations (the MAD ModUp-hoisting code path) for the reduction tree.
 */
#include <cmath>
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "support/random.h"

using namespace madfhe;

int
main()
{
    std::printf("=== Encrypted statistics (mean / variance / covariance) "
                "===\n\n");

    CkksParams p;
    p.log_n = 11;
    p.log_scale = 36;
    p.first_prime_bits = 48;
    p.num_levels = 6;
    p.dnum = 2;
    auto ctx = std::make_shared<CkksContext>(p);
    const size_t n = ctx->slots();

    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    std::vector<int> steps;
    for (size_t s = 1; s < n; s <<= 1)
        steps.push_back(static_cast<int>(s));
    GaloisKeys gks = keygen.galoisKeys(sk, steps);

    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    // Synthetic correlated data.
    Prng rng(11);
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
        x[i] = 2.0 * rng.uniformReal() - 1.0;
        y[i] = 0.6 * x[i] + 0.2 * (2.0 * rng.uniformReal() - 1.0);
    }

    Ciphertext cx = encryptor.encrypt(
        encoder.encodeReal(x, ctx->scale(), ctx->maxLevel()));
    Ciphertext cy = encryptor.encrypt(
        encoder.encodeReal(y, ctx->scale(), ctx->maxLevel()));

    // Rotate-and-add with hoisted rotations where it helps: at each tree
    // level a single Decomp+ModUp serves the rotation (ModUp hoisting
    // degenerates to one rotation per level here, but exercises the
    // hoisted code path).
    auto slotSum = [&](Ciphertext ct) {
        for (size_t s = 1; s < n; s <<= 1) {
            auto rotated =
                eval.rotateHoisted(ct, {static_cast<int>(s)}, gks);
            ct = eval.add(ct, rotated[0]);
        }
        return ct;
    };
    const double inv_n = 1.0 / static_cast<double>(n);

    // mean = sum(x)/n
    Ciphertext cmean_x = eval.mulScalarRescale(slotSum(cx), inv_n);
    Ciphertext cmean_y = eval.mulScalarRescale(slotSum(cy), inv_n);

    // var(x) = mean(x^2) - mean(x)^2; cov = mean(xy) - mean(x)mean(y)
    Ciphertext cxx = eval.mulScalarRescale(
        slotSum(eval.square(cx, rlk)), inv_n);
    Ciphertext cxy = eval.mulScalarRescale(
        slotSum(eval.mul(cx, cy, rlk)), inv_n);
    Ciphertext mean_sq = eval.square(cmean_x, rlk);
    Ciphertext mean_xy = eval.mul(cmean_x, cmean_y, rlk);
    Ciphertext cvar =
        eval.sub(eval.dropToLevel(cxx, mean_sq.level()), mean_sq);
    Ciphertext ccov =
        eval.sub(eval.dropToLevel(cxy, mean_xy.level()), mean_xy);

    auto scalarOf = [&](const Ciphertext& ct) {
        return encoder.decode(decryptor.decrypt(ct))[0].real();
    };

    // Plaintext reference.
    double mx = 0, my = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx *= inv_n;
    my *= inv_n;
    for (size_t i = 0; i < n; ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
    }
    sxx *= inv_n;
    sxy *= inv_n;

    struct Row
    {
        const char* name;
        double enc, ref;
    };
    const Row rows[] = {
        {"mean(x)", scalarOf(cmean_x), mx},
        {"mean(y)", scalarOf(cmean_y), my},
        {"var(x)", scalarOf(cvar), sxx},
        {"cov(x,y)", scalarOf(ccov), sxy},
    };
    std::printf("%-10s %14s %14s %10s\n", "stat", "encrypted", "plaintext",
                "error");
    double max_err = 0;
    for (const auto& r : rows) {
        double err = std::abs(r.enc - r.ref);
        max_err = std::max(max_err, err);
        std::printf("%-10s %14.8f %14.8f %10.2e\n", r.name, r.enc, r.ref,
                    err);
    }
    std::printf("\n%s (max error %.2e over %zu encrypted samples)\n",
                max_err < 1e-4 ? "OK" : "FAILED", max_err, n);
    return max_err < 1e-4 ? 0 : 1;
}
