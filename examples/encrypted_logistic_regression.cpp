/**
 * @file
 * Encrypted logistic-regression training (a functional miniature of the
 * HELR workload the paper evaluates), using the reusable
 * apps::EncryptedLrTrainer: gradient descent runs entirely on encrypted
 * data, then the learned weights are decrypted and compared against
 * plaintext training with the identical update rule.
 */
#include <cstdio>

#include "apps/lr.h"

using namespace madfhe;
using namespace madfhe::apps;

int
main()
{
    std::printf("=== Encrypted logistic regression (HELR-style, "
                "functional) ===\n\n");

    CkksParams p;
    p.log_n = 10;
    p.log_scale = 33;
    p.first_prime_bits = 45;
    p.num_levels = 14;
    p.dnum = 3;
    auto ctx = std::make_shared<CkksContext>(p);

    LrConfig cfg;
    cfg.features = 4;
    cfg.iterations = 2;
    EncryptedLrTrainer trainer(ctx, cfg);

    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, trainer.requiredRotations());
    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    // One training sample per slot.
    LrDataset data = LrDataset::twoGaussians(ctx->slots(), cfg.features, 7);
    std::printf("samples: %zu, features: %zu, iterations: %zu\n\n",
                data.sampleCount(), cfg.features, cfg.iterations);

    auto cts = trainer.encryptFeatures(encoder, encryptor, data);
    auto labels = trainer.encryptLabels(encoder, encryptor, data);
    auto enc_w =
        trainer.train(eval, encoder, encryptor, cts, labels, rlk, gks);

    LrModel enc_model = trainer.decryptModel(encoder, decryptor, enc_w);
    LrModel ref_model = trainer.trainPlain(data);

    std::printf("%-10s %12s %12s\n", "feature", "encrypted w",
                "plaintext w");
    double max_dev = 0;
    for (size_t j = 0; j < cfg.features; ++j) {
        max_dev = std::max(max_dev, std::abs(enc_model.weights[j] -
                                             ref_model.weights[j]));
        std::printf("w[%zu]      %12.6f %12.6f\n", j, enc_model.weights[j],
                    ref_model.weights[j]);
    }

    double acc = enc_model.accuracy(data);
    std::printf("\nencrypted-vs-plaintext weight deviation: %.2e\n",
                max_dev);
    std::printf("training accuracy: %.1f%%\n", 100.0 * acc);
    bool ok = max_dev < 1e-2 && acc > 0.9;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
