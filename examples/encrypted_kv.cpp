/**
 * @file
 * Encrypted-Redis demo: a tiny key/value workload against the src/serve
 * runtime over its TCP front end. The server never sees plaintext — it
 * stores ciphertext values under string keys, evaluates on them with a
 * byte-budgeted switching-key cache, and the client decrypts locally.
 *
 *   PUT  user:alice / user:bob   packed per-field counter records
 *   GET  user:alice              fetch + decrypt locally
 *   INCR user:alice              EvalAdd against the stored ciphertext
 *   SCAN user:bob                hoisted rotate through {1, 2, 4} to walk
 *                                the packed fields (Redis SCAN, but the
 *                                server learns nothing about the values)
 *   MASK user:bob                EvalMul with an encrypted one-hot mask
 *                                to project out a single field
 *
 * The key cache is deliberately budgeted below the tenant's working set
 * so the demo also shows eviction + seed re-expansion in the stats line.
 * Knobs: MADFHE_KEYCACHE_BYTES, MADFHE_BATCH_MAX (see DESIGN.md).
 */
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/serialize.h"
#include "serve/server.h"
#include "serve/tcp.h"

using namespace madfhe;

namespace {

/** One client→server round trip over the wire, error-checked. */
serve::Response
call(const serve::TcpFrontEnd& tcp, std::shared_ptr<const RingContext> ring,
     serve::Request req)
{
    static u64 next_id = 1;
    req.id = next_id++;
    serve::Response resp = serve::decodeResponse(
        serve::tcpRequest("127.0.0.1", tcp.port(), serve::encodeRequest(req)),
        ring);
    serve::throwIfError(resp);
    return resp;
}

void
printRecord(const char* label, const std::vector<std::complex<double>>& slots,
            size_t n)
{
    std::printf("%-12s [", label);
    for (size_t i = 0; i < n; ++i)
        std::printf("%s%6.2f", i ? ", " : "", slots[i].real());
    std::printf(", ...]\n");
}

} // namespace

int
main()
{
    std::printf("=== encrypted key/value store over src/serve ===\n\n");

    CkksParams params = CkksParams::unitTest(); // demo-sized, fast keygen
    auto ctx = std::make_shared<CkksContext>(params);
    CkksEncoder encoder(ctx);

    // --- tenant enrolment -------------------------------------------------
    // The tenant ships seed-compressed switching keys; the server expands
    // them on demand inside a byte-budgeted LRU cache. Budget = 3 expanded
    // keys while the workload touches 4 (relin + 3 Galois), so the
    // SCAN/MASK traffic forces eviction and bit-exact re-expansion from
    // the 32-byte seeds.
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    serve::TenantKeys keys;
    keys.pk = keygen.publicKey(sk);
    keys.rlk = keygen.relinKey(sk);
    keys.gks = keygen.galoisKeys(sk, {1, 2, 4});

    serve::ServerOptions opts;
    opts.keycache_bytes = 3 * keys.rlk.aBytes();
    serve::Server server(ctx, opts);
    const u64 tenant = server.addTenant(std::move(keys));

    serve::TcpFrontEnd tcp(server, 0);
    std::printf("server up on 127.0.0.1:%u, key-cache budget %zu bytes\n\n",
                unsigned(tcp.port()), server.keyCacheStats().budget_bytes);

    Encryptor enc(ctx, keygen.publicKey(sk));
    Decryptor dec(ctx, sk);
    auto encryptRecord = [&](std::vector<double> fields) {
        fields.resize(ctx->slots(), 0.0);
        return enc.encrypt(
            encoder.encodeReal(fields, ctx->scale(), ctx->maxLevel()));
    };
    auto decryptRecord = [&](const Ciphertext& ct) {
        return encoder.decode(dec.decrypt(ct));
    };

    // --- PUT: two packed records -----------------------------------------
    // Each record packs per-field counters into SIMD slots:
    // [logins, purchases, points, refunds, ...]
    serve::Request put;
    put.tenant = tenant;
    put.op = serve::Op::Put;
    put.name = "user:alice";
    put.cts = {encryptRecord({3, 1, 250, 0})};
    call(tcp, ctx->ring(), std::move(put));

    put = {};
    put.tenant = tenant;
    put.op = serve::Op::Put;
    put.name = "user:bob";
    put.cts = {encryptRecord({7, 2, 410, 1})};
    call(tcp, ctx->ring(), std::move(put));
    std::printf("PUT  user:alice, user:bob (ciphertext records)\n");

    // --- GET: fetch and decrypt locally ----------------------------------
    serve::Request get;
    get.tenant = tenant;
    get.op = serve::Op::Get;
    get.name = "user:alice";
    serve::Response got = call(tcp, ctx->ring(), std::move(get));
    printRecord("GET  alice", decryptRecord(got.cts[0]), 4);

    // --- INCR: homomorphic add against the stored value ------------------
    // Server adds an encrypted delta to the stored record without ever
    // decrypting it; the client PUTs the bumped record back.
    serve::Request incr;
    incr.tenant = tenant;
    incr.op = serve::Op::EvalAdd;
    incr.name = "user:alice";
    incr.cts = {encryptRecord({1, 0, 25, 0})}; // +1 login, +25 points
    serve::Response bumped = call(tcp, ctx->ring(), std::move(incr));
    printRecord("INCR alice", decryptRecord(bumped.cts[0]), 4);

    put = {};
    put.tenant = tenant;
    put.op = serve::Op::Put;
    put.name = "user:alice";
    put.cts = {bumped.cts[0]};
    call(tcp, ctx->ring(), std::move(put));

    // --- SCAN: hoisted rotate walk over the packed fields ----------------
    get = {};
    get.tenant = tenant;
    get.op = serve::Op::Get;
    get.name = "user:bob";
    serve::Response bob = call(tcp, ctx->ring(), std::move(get));

    const std::vector<int> scan_steps = {1, 2, 4};
    serve::Request scan;
    scan.tenant = tenant;
    scan.op = serve::Op::Rotate;
    scan.steps = scan_steps;
    scan.cts = {bob.cts[0]};
    serve::Response windows = call(tcp, ctx->ring(), std::move(scan));
    std::printf("SCAN bob (slot 0 after each hoisted rotation):\n");
    for (size_t i = 0; i < windows.cts.size(); ++i)
        std::printf("  rotate %d -> field[%d] = %.2f\n", scan_steps[i],
                    scan_steps[i], decryptRecord(windows.cts[i])[0].real());

    // --- MASK: field projection via an encrypted one-hot ------------------
    // Multiply by an encrypted one-hot mask to extract a single field.
    // This pulls the relin key into the cache; with the 3 Galois keys
    // already resident it exceeds the budget, so the LRU key is evicted
    // and later re-expanded from its seed.
    serve::Request mask;
    mask.tenant = tenant;
    mask.op = serve::Op::EvalMul;
    mask.cts = {bob.cts[0], encryptRecord({0, 0, 1, 0})};
    serve::Response points = call(tcp, ctx->ring(), std::move(mask));
    printRecord("MASK bob", decryptRecord(points.cts[0]), 4);

    // --- stats ------------------------------------------------------------
    server.drain();
    const serve::KeyCache::Stats cache = server.keyCacheStats();
    std::printf("\nkey cache: budget %zu B, peak %zu B, %llu hits, "
                "%llu misses, %llu evictions (re-expanded from seeds)\n",
                cache.budget_bytes, cache.peak_bytes,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions));

    tcp.stop();
    server.stop();
    std::printf("OK: server only ever handled ciphertext\n");
    return 0;
}
